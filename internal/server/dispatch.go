package server

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"

	"grca/internal/apps/cdn"
	"grca/internal/event"
	"grca/internal/locus"
)

// batch is one dispatched ingest batch moving through the commit
// pipeline. The dispatcher fills seq/kind/stored-slots and routes
// sub-batches to shards; appliers write stored instances into their
// positions and count pending down; the finisher waits for ready, runs
// the streaming processors, and replies.
type batch struct {
	seq  int
	kind byte
	// stored collects the committed instances in original batch order,
	// across shards: applier j writes its events into its own positions.
	// The finisher reads it only after ready closes; the countdown's
	// atomic decrement and the channel close order those writes before
	// the reads.
	stored  []*event.Instance
	pending atomic.Int32
	ready   chan struct{}
	// res is the reply. Pre-set for inline-applied batches (feeds,
	// finalize, dispatch-time failures); computed by the finisher for
	// event batches.
	res   taskResult
	reply chan taskResult

	errMu sync.Mutex
	err   error
	errSt int
}

// fail records the batch's first commit error (journal, store, WAL);
// the finisher turns it into the reply.
func (bt *batch) fail(status int, err error) {
	bt.errMu.Lock()
	if bt.err == nil {
		bt.err, bt.errSt = err, status
	}
	bt.errMu.Unlock()
}

func (bt *batch) firstErr() (int, error) {
	bt.errMu.Lock()
	defer bt.errMu.Unlock()
	return bt.errSt, bt.err
}

// closedChan is the pre-closed ready channel shared by inline-applied
// batches.
var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// shardTask is one shard's slice of a batch, or a barrier. A barrier
// (wait != nil) carries no events: the applier acknowledges it after
// committing everything queued before it, which is how the dispatcher
// waits for all shards to catch up before applying feeds or finalize
// inline.
type shardTask struct {
	bt     *batch
	events []event.Instance // IDs pre-assigned by the dispatcher
	pos    []int            // events[j] commits into bt.stored[pos[j]]
	jrec   []byte           // journal record, on the one owner shard
	jseq   int              // jrec's sequence, for the sealer's watermark
	wait   *sync.WaitGroup  // barrier
}

// dispatch admits one validated ingest request into the commit pipeline
// and waits for its result. The admission — everything order-sensitive:
// sequence numbering, ID allocation, routing, queue placement, and the
// inline collector phases — happens under dispatchMu in admit; the wait
// happens outside it.
func (s *Server) dispatch(ctx context.Context, t task) taskResult {
	bt, res := s.admit(&t)
	if bt == nil {
		return res
	}
	select {
	case r := <-bt.reply:
		return r
	case <-ctx.Done():
		return errResult(http.StatusServiceUnavailable, "timed out waiting for the commit pipeline")
	}
}

// admit routes one task into the pipeline under dispatchMu. A nil batch
// means the task was rejected (or applied to completion) and res is the
// final answer; otherwise the caller waits on the batch's reply channel.
func (s *Server) admit(t *task) (*batch, taskResult) {
	s.dispatchMu.Lock()
	defer s.dispatchMu.Unlock()
	select {
	case <-s.closing:
		return nil, errResult(http.StatusServiceUnavailable, "server is shutting down")
	default:
	}
	switch t.kind {
	case recFeed:
		return s.dispatchFeed(t)
	case recFinalize:
		return s.dispatchFinalize()
	default:
		return s.dispatchEvents(t)
	}
}

// shardOf routes a location, caching the answer: post-finalize routing
// walks the conversion lattice's component map, and ingest streams
// concentrate on few distinct locations. The cache lives under
// dispatchMu and resets when the routing function changes.
func (s *Server) shardOf(loc locus.Location) int {
	if i, ok := s.routeCache[loc]; ok {
		return i
	}
	i := s.st.ShardFor(loc)
	if len(s.routeCache) < 1<<16 {
		s.routeCache[loc] = i
	}
	return i
}

// dispatchEvents admits a normalized-event batch: reject while any
// involved shard queue is full (before consuming a sequence number or
// IDs, so both stay dense), then allocate, split by shard, and enqueue.
// The journal record — the verbatim request body — goes to the shard of
// the batch's first event; replaying the merged journals in sequence
// order re-allocates the same IDs to the same events.
func (s *Server) dispatchEvents(t *task) (*batch, taskResult) {
	// An empty batch has no first event to own the journal record and
	// nothing to commit. Handlers reject these before dispatch, but guard
	// here too: reaching routes[0] on an empty slice would panic under
	// dispatchMu after consuming a sequence number the finisher never
	// sees, wedging every later waitFinisher.
	if len(t.events) == 0 {
		return nil, errResult(http.StatusBadRequest, "empty event batch")
	}
	n := len(s.shards)
	routes := make([]int, len(t.events))
	perShard := make([]int, n)
	involved := 0
	for j := range t.events {
		i := s.shardOf(t.events[j].Loc)
		routes[j] = i
		if perShard[i] == 0 {
			involved++
		}
		perShard[i]++
	}
	depth, capacity := 0, 0
	for i, sh := range s.shards {
		depth += len(sh.queue)
		capacity += cap(sh.queue)
		if perShard[i] > 0 && len(sh.queue) == cap(sh.queue) {
			mRejected.Inc()
			// Retry-After scales with how loaded the whole pipeline is:
			// an almost-empty pipeline with one hot shard retries fast, a
			// saturated one backs off harder.
			return nil, taskResult{
				status:     http.StatusTooManyRequests,
				err:        fmt.Errorf("ingest queue full (shard %d), retry later", i),
				retryAfter: 1 + (3*depth)/max(capacity, 1),
			}
		}
	}
	mQueueDepth.Set(int64(depth))
	// The finisher's backlog gates admission too: committed batches sit
	// in finishQ until the streaming processors catch up, and the send
	// below happens under dispatchMu, so it must never block. Only
	// admission (under this lock) sends to finishQ and the finisher only
	// receives, so a vacancy observed here is still there at the send.
	if len(s.finishQ) == cap(s.finishQ) {
		mRejected.Inc()
		return nil, taskResult{
			status:     http.StatusTooManyRequests,
			err:        fmt.Errorf("ingest pipeline backlogged, retry later"),
			retryAfter: 1 + (3*(depth+len(s.finishQ)))/max(capacity+cap(s.finishQ), 1),
		}
	}

	seq := s.seq
	s.seq++
	block := s.st.AllocBlock(len(t.events))
	bt := &batch{
		seq: seq, kind: t.kind,
		stored: make([]*event.Instance, len(t.events)),
		ready:  make(chan struct{}),
		reply:  make(chan taskResult, 1),
	}
	bt.pending.Store(int32(involved))
	subs := make([]*shardTask, n)
	for j := range t.events {
		i := routes[j]
		st := subs[i]
		if st == nil {
			st = &shardTask{
				bt:     bt,
				events: make([]event.Instance, 0, perShard[i]),
				pos:    make([]int, 0, perShard[i]),
			}
			subs[i] = st
		}
		ev := t.events[j]
		ev.ID = block + j
		st.events = append(st.events, ev)
		st.pos = append(st.pos, j)
	}
	owner := routes[0] // non-empty: guarded at the top
	subs[owner].jrec = encodeRecord(seq, t.kind, "", t.raw)
	subs[owner].jseq = seq
	s.sealer.assign(owner, seq)
	for i, st := range subs {
		if st != nil {
			s.shards[i].queue <- *st // admission guaranteed space
		}
	}
	s.finishQ <- bt
	return bt, taskResult{}
}

// dispatchFeed applies a raw feed batch inline: the collector's parse
// state is a single shared structure, so feeds serialize on dispatchMu
// by design (they are the bulk-load phase, not the streaming fast
// path). The barrier first drains every shard queue — the collector's
// Adds go straight to the shards, and each shard's WAL requires IDs to
// arrive in order, so all lower-ID queued events must be committed
// before the feed allocates higher ones.
func (s *Server) dispatchFeed(t *task) (*batch, taskResult) {
	if s.isFinalized() {
		return nil, errResult(http.StatusConflict, "feeds are closed: the system is finalized (use events)")
	}
	// Feeds reply through finishQ too; refuse while the finisher is
	// saturated so the send at the end can never block under dispatchMu.
	// (Finalize needs no such gate: waitFinisher drains finishQ first.)
	if len(s.finishQ) == cap(s.finishQ) {
		mRejected.Inc()
		depth, capacity := s.queueTotals()
		return nil, taskResult{
			status:     http.StatusTooManyRequests,
			err:        fmt.Errorf("ingest pipeline backlogged, retry later"),
			retryAfter: 1 + (3*(depth+len(s.finishQ)))/max(capacity+cap(s.finishQ), 1),
		}
	}
	s.barrier()
	seq := s.seq
	s.seq++
	bt := &batch{seq: seq, kind: recFeed, ready: closedChan, reply: make(chan taskResult, 1)}
	// The fsynced journal append is the commit point; it precedes the
	// apply so an invalid batch is journaled too — replay hits the same
	// deterministic parse error and converges on the same state.
	rec := encodeRecord(seq, recFeed, t.source, t.lines)
	s.sealer.assign(0, seq)
	err := s.shards[0].jour.Append(rec)
	s.sealer.done(0, seq)
	if err != nil {
		bt.res = errResult(http.StatusInternalServerError, "journal: %v", err)
		s.finishQ <- bt
		return bt, taskResult{}
	}
	before := s.st.NextID()
	if err := s.coll.Ingest(t.source, bytes.NewReader(t.lines)); err != nil {
		bt.res = errResult(http.StatusBadRequest, "%v", err)
	} else {
		stored := s.st.NextID() - before
		mEvents.Add(int64(stored))
		bt.res = taskResult{status: http.StatusOK, resp: IngestResponse{Stored: stored}}
	}
	for _, sh := range s.shards {
		if err := sh.log.Commit(); err != nil && bt.res.err == nil {
			bt.res = errResult(http.StatusInternalServerError, "wal: %v", err)
		}
	}
	s.finishQ <- bt
	return bt, taskResult{}
}

// dispatchFinalize closes the feed phase and installs the serving
// artifacts. It drains the whole pipeline first — the barrier commits
// every queued event, waitFinisher drains the finisher — so the rollup
// seed that installServing derives sees exactly the events of all
// acknowledged batches, and no batch straddles the routing change.
func (s *Server) dispatchFinalize() (*batch, taskResult) {
	if s.isFinalized() {
		return nil, errResult(http.StatusConflict, "already finalized")
	}
	s.barrier()
	s.waitFinisher()
	seq := s.seq
	s.seq++
	bt := &batch{seq: seq, kind: recFinalize, ready: closedChan, reply: make(chan taskResult, 1)}
	s.sealer.assign(0, seq)
	err := s.shards[0].jour.Append(encodeRecord(seq, recFinalize, "", nil))
	s.sealer.done(0, seq)
	if err != nil {
		bt.res = errResult(http.StatusInternalServerError, "journal: %v", err)
		s.finishQ <- bt
		return bt, taskResult{}
	}
	bt.res = s.applyFinalize()
	for _, sh := range s.shards {
		if err := sh.log.Commit(); err != nil && bt.res.err == nil {
			bt.res = errResult(http.StatusInternalServerError, "wal: %v", err)
		}
	}
	s.finishQ <- bt
	return bt, taskResult{}
}

func (s *Server) applyFinalize() taskResult {
	if err := s.coll.Finalize(); err != nil {
		return errResult(http.StatusInternalServerError, "finalize: %v", err)
	}
	cdn.MaterializeEgressChanges(s.coll, s.cfg.Bundle.CDN, s.coll.WindowStart, s.coll.WindowEnd)
	if err := s.installServing(false); err != nil {
		return errResult(http.StatusInternalServerError, "%v", err)
	}
	return taskResult{status: http.StatusOK}
}

// barrier blocks until every shard applier has committed everything
// queued before it. Callers hold dispatchMu, so nothing new can enter
// the queues while it waits.
func (s *Server) barrier() {
	var wg sync.WaitGroup
	wg.Add(len(s.shards))
	for _, sh := range s.shards {
		sh.queue <- shardTask{wait: &wg}
	}
	wg.Wait()
}

// waitFinisher blocks until the finisher has replied to every batch
// dispatched so far. Callers hold dispatchMu; the finisher never takes
// it, so it drains independently.
func (s *Server) waitFinisher() {
	target := s.seq - 1
	s.finishMu.Lock()
	for s.finishedSeq < target {
		s.finishCond.Wait()
	}
	s.finishMu.Unlock()
}

// applier is shard sh's single writer: it drains the queue into commit
// groups so the journal fsync, the store inserts, and the WAL commit
// are each amortized across every batch already waiting — group commit
// per shard, with the bounded queue as the wait window, so fsync
// amortization grows exactly when load does. A barrier ends its group:
// the dispatcher is waiting on it and nothing can be queued behind it.
func (s *Server) applier(sh *shard) {
	defer close(sh.done)
	for {
		t, ok := <-sh.queue
		if !ok {
			return
		}
		group := []shardTask{t}
		if t.wait == nil {
		drain:
			for {
				select {
				case t2, ok := <-sh.queue:
					if !ok {
						break drain
					}
					group = append(group, t2)
					if t2.wait != nil {
						break drain
					}
				default:
					break drain
				}
			}
		}
		s.applyShardGroup(sh, group)
	}
}

// applyShardGroup commits one group on one shard: stage the journal
// records this shard owns, fsync once (each batch's commit point),
// insert every event into the store (feeding the shard's WAL buffer),
// commit the WAL once, then count each batch down. Insertions proceed
// even for a batch whose journal append failed — its shards must stay
// mutually consistent and its reply is an error either way; the next
// restart reconciles the store against the journals and rebuilds.
func (s *Server) applyShardGroup(sh *shard, group []shardTask) {
	var jerr error
	staged := 0
	for i := range group {
		t := &group[i]
		if t.jrec == nil {
			continue
		}
		if jerr == nil {
			if err := sh.jour.AppendNoSync(t.jrec); err != nil {
				jerr = err
			} else {
				staged++
			}
		}
		if jerr != nil {
			t.bt.fail(http.StatusInternalServerError, fmt.Errorf("journal: %v", jerr))
		}
	}
	if staged > 0 {
		if err := sh.jour.Sync(); err != nil {
			for i := range group {
				if group[i].jrec != nil {
					group[i].bt.fail(http.StatusInternalServerError, fmt.Errorf("journal: %v", err))
				}
			}
		}
	}
	// Every owned record's fate is settled — durably journaled, or failed
	// and never appearing — so the sealer's watermark can move past them.
	for i := range group {
		if group[i].jrec != nil {
			s.sealer.done(sh.idx, group[i].jseq)
		}
	}
	for i := range group {
		t := &group[i]
		for j := range t.events {
			stored, err := sh.st.Put(t.events[j])
			if err != nil {
				t.bt.fail(http.StatusInternalServerError, fmt.Errorf("store: %v", err))
				continue
			}
			t.bt.stored[t.pos[j]] = stored
		}
	}
	if err := sh.log.Commit(); err != nil {
		for i := range group {
			if group[i].wait == nil {
				group[i].bt.fail(http.StatusInternalServerError, fmt.Errorf("wal: %v", err))
			}
		}
	}
	for i := range group {
		t := &group[i]
		if t.wait != nil {
			t.wait.Done()
			continue
		}
		if t.bt.pending.Add(-1) == 0 {
			close(t.bt.ready)
		}
	}
}

// finisher is the pipeline's single join point: batches arrive on
// finishQ in dispatch (sequence) order, and for each one it waits for
// all involved shards to commit, runs the streaming processors over the
// stored events in original order, and replies. Observing strictly in
// sequence order on one goroutine is what makes responses — diagnosis
// lists included — byte-identical for every shard count.
func (s *Server) finisher() {
	defer close(s.finishDone)
	for bt := range s.finishQ {
		<-bt.ready
		switch bt.kind {
		case recEvents, recEventsWire:
			if status, err := bt.firstErr(); err != nil {
				bt.res = taskResult{status: status, err: err}
			} else {
				bt.res = s.observeBatch(bt)
			}
		}
		mBatches.Inc()
		bt.reply <- bt.res
		s.finishMu.Lock()
		s.finishedSeq = bt.seq
		s.finishCond.Broadcast()
		s.finishMu.Unlock()
	}
}

// observeBatch runs the committed events of one batch through every
// application's streaming processor, in batch order, collecting the
// response the same way the pre-sharding single applier did.
func (s *Server) observeBatch(bt *batch) taskResult {
	resp := s.observeStored(bt.stored)
	return taskResult{status: http.StatusOK, resp: resp}
}

// observeStored runs committed instances through every application's
// streaming processor in order. Shared by the finisher (primary) and
// the journal-stream apply path (follower), so both sides feed the
// processors the identical event sequence.
func (s *Server) observeStored(stored []*event.Instance) IngestResponse {
	var resp IngestResponse
	s.mu.RLock()
	procs := s.procs
	s.mu.RUnlock()
	specs := appSpecs()
	for _, in := range stored {
		if in == nil {
			continue
		}
		resp.Stored++
		for _, a := range specs { // stable app order
			p, ok := procs[a.name]
			if !ok {
				continue
			}
			ds, late := p.ObserveStored(in)
			if late {
				resp.Late++
			}
			for _, d := range ds {
				dj := diagnosisJSON(d)
				dj.App = a.name
				resp.Diagnoses = append(resp.Diagnoses, dj)
			}
		}
	}
	mEvents.Add(int64(resp.Stored))
	return resp
}
