package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"grca/internal/browser"
	"grca/internal/event"
	"grca/internal/platform"
	"grca/internal/store"
)

func get(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

// removeWALState deletes the WAL and snapshots, the crashed-before-WAL-
// commit persona: recovery must rebuild everything from the journal.
func removeWALState(t *testing.T, dir string) {
	t.Helper()
	for _, sub := range []string{"wal", "snap"} {
		if err := os.RemoveAll(filepath.Join(dir, sub)); err != nil {
			t.Fatal(err)
		}
	}
}

type breakdownResp struct {
	App   string          `json:"app"`
	Total int             `json:"total"`
	Rows  json.RawMessage `json:"rows"`
}

// TestResultBrowser drives the live Result Browser endpoints over a full
// corpus: breakdown/trend parity with the batch browser package, cause
// filtering, drill-down, the SSE stream, and rollup determinism across
// restart (graceful and crashed).
func TestResultBrowser(t *testing.T) {
	d, b := testBundle(t)
	dir := t.TempDir()
	s := openServer(t, dir, b)
	ts := httptest.NewServer(s.Handler())

	// Browser endpoints refuse to answer before finalize.
	if code, _ := get(t, ts, "/v1/breakdown?app=bgpflap"); code != http.StatusConflict {
		t.Fatalf("breakdown before finalize: %d, want 409", code)
	}
	loadAndFinalize(t, ts, b)

	// Batch reference over the identical corpus.
	sys, err := platform.FromDataset(d, platform.Options{})
	if err != nil {
		t.Fatal(err)
	}

	t.Run("breakdown parity", func(t *testing.T) {
		for _, app := range []string{"bgpflap", "cdn"} {
			spec := specFor(t, app)
			eng, err := spec.newEngine(sys.Store, sys.View)
			if err != nil {
				t.Fatal(err)
			}
			ds := eng.DiagnoseAll()
			want, _ := json.Marshal(browser.Breakdown(ds, spec.display))
			code, body := get(t, ts, "/v1/breakdown?app="+app)
			if code != http.StatusOK {
				t.Fatalf("%s: %d %s", app, code, body)
			}
			var resp breakdownResp
			if err := json.Unmarshal(body, &resp); err != nil {
				t.Fatal(err)
			}
			if resp.Total != len(ds) {
				t.Errorf("%s: total = %d, want %d diagnoses", app, resp.Total, len(ds))
			}
			if len(ds) > 0 && !bytes.Equal(resp.Rows, want) {
				t.Errorf("%s: live breakdown != batch browser.Breakdown\n got %s\nwant %s",
					app, resp.Rows, want)
			}
		}
	})

	t.Run("breakdown validation", func(t *testing.T) {
		if code, _ := get(t, ts, "/v1/breakdown"); code != http.StatusBadRequest {
			t.Errorf("missing app: %d", code)
		}
		if code, _ := get(t, ts, "/v1/breakdown?app=nosuch"); code != http.StatusBadRequest {
			t.Errorf("unknown app: %d", code)
		}
		if code, _ := get(t, ts, "/v1/breakdown?app=bgpflap&window=banana"); code != http.StatusBadRequest {
			t.Errorf("bad window: %d", code)
		}
		code, body := get(t, ts, "/v1/breakdown?app=bgpflap&window=24h")
		if code != http.StatusOK {
			t.Fatalf("windowed breakdown: %d %s", code, body)
		}
		var full, windowed breakdownResp
		_, fullBody := get(t, ts, "/v1/breakdown?app=bgpflap")
		json.Unmarshal(fullBody, &full) //nolint:errcheck // checked above
		if err := json.Unmarshal(body, &windowed); err != nil {
			t.Fatal(err)
		}
		if windowed.Total > full.Total {
			t.Errorf("24h window counts %d > full total %d", windowed.Total, full.Total)
		}
	})

	t.Run("trend parity", func(t *testing.T) {
		first, last, ok := s.Store().Span()
		if !ok {
			t.Fatal("no span after load")
		}
		for _, bin := range []time.Duration{time.Minute, time.Hour} {
			want, _ := json.Marshal(browser.Trend(s.Store(), event.EBGPFlap, first.Truncate(bin), last, bin))
			code, body := get(t, ts, "/v1/trend?bin="+bin.String()+"&name="+url.QueryEscape(event.EBGPFlap))
			if code != http.StatusOK {
				t.Fatalf("trend bin %v: %d %s", bin, code, body)
			}
			var resp struct {
				Points json.RawMessage `json:"points"`
			}
			if err := json.Unmarshal(body, &resp); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(resp.Points, want) {
				t.Errorf("bin %v: live trend != browser.Trend\n got %s\nwant %s", bin, resp.Points, want)
			}
		}
		if code, _ := get(t, ts, "/v1/trend?name=x&bin=90s"); code != http.StatusBadRequest {
			t.Errorf("bin off the base grid: %d", code)
		}
		if code, _ := get(t, ts, "/v1/trend"); code != http.StatusBadRequest {
			t.Errorf("trend without name or cause: %d", code)
		}
	})

	t.Run("causes and cause trend", func(t *testing.T) {
		code, body := get(t, ts, "/v1/causes?app=bgpflap")
		if code != http.StatusOK {
			t.Fatalf("causes: %d %s", code, body)
		}
		var causes struct {
			Total  int           `json:"total"`
			Causes []browser.Row `json:"causes"`
		}
		if err := json.Unmarshal(body, &causes); err != nil {
			t.Fatal(err)
		}
		if causes.Total == 0 || len(causes.Causes) == 0 {
			t.Fatalf("no causes over a corpus with flap incidents: %s", body)
		}
		// The cause's trend over the default window must sum back to its
		// breakdown count.
		label := causes.Causes[0].Label
		code, body = get(t, ts, "/v1/trend?app=bgpflap&bin=1h&cause="+url.QueryEscape(label))
		if code != http.StatusOK {
			t.Fatalf("cause trend: %d %s", code, body)
		}
		var trend struct {
			Points []browser.TrendPoint `json:"points"`
		}
		if err := json.Unmarshal(body, &trend); err != nil {
			t.Fatal(err)
		}
		sum := 0
		for _, p := range trend.Points {
			sum += p.Count
		}
		if sum != causes.Causes[0].Count {
			t.Errorf("cause %q trend sums to %d, breakdown counts %d", label, sum, causes.Causes[0].Count)
		}
	})

	t.Run("drilldown", func(t *testing.T) {
		code, body := post(t, ts, "/v1/diagnose", DiagnoseRequest{App: "bgpflap", All: true})
		if code != http.StatusOK {
			t.Fatalf("diagnose: %d %s", code, body)
		}
		var all DiagnoseResponse
		if err := json.Unmarshal(body, &all); err != nil {
			t.Fatal(err)
		}
		if len(all.Diagnoses) == 0 {
			t.Fatal("no diagnoses to drill into")
		}
		want := all.Diagnoses[0]
		code, body = get(t, ts, "/v1/drilldown/"+strconv.Itoa(want.Symptom.ID))
		if code != http.StatusOK {
			t.Fatalf("drilldown: %d %s", code, body)
		}
		var dd struct {
			App       string          `json:"app"`
			Diagnosis DiagnosisJSON   `json:"diagnosis"`
			Trace     json.RawMessage `json:"trace"`
			Colocated []EventJSON     `json:"colocated"`
		}
		if err := json.Unmarshal(body, &dd); err != nil {
			t.Fatal(err)
		}
		if dd.App != "bgpflap" {
			t.Errorf("inferred app = %q, want bgpflap", dd.App)
		}
		if dd.Diagnosis.Label != want.Label {
			t.Errorf("drilldown label %q != diagnose label %q", dd.Diagnosis.Label, want.Label)
		}
		if string(dd.Trace) == "null" || len(dd.Trace) == 0 {
			t.Error("drilldown carries no trace (traced engine not used?)")
		}
		if code, _ = get(t, ts, "/v1/drilldown/99999999"); code != http.StatusNotFound {
			t.Errorf("unknown id: %d", code)
		}
		if code, _ = get(t, ts, "/v1/drilldown/banana"); code != http.StatusBadRequest {
			t.Errorf("non-numeric id: %d", code)
		}
	})

	t.Run("stream and recent", func(t *testing.T) {
		// A live SSE client subscribed before the diagnosis arrives.
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/stream", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("stream: %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
			t.Fatalf("stream content-type = %q", ct)
		}
		lines := make(chan string, 16)
		go func() {
			sc := bufio.NewScanner(resp.Body)
			for sc.Scan() {
				if strings.HasPrefix(sc.Text(), "data: ") {
					lines <- strings.TrimPrefix(sc.Text(), "data: ")
				}
			}
			close(lines)
		}()
		for i := 0; !s.hub.active() && i < 500; i++ {
			time.Sleep(10 * time.Millisecond)
		}
		if !s.hub.active() {
			t.Fatal("stream client never subscribed")
		}

		// One event batch that streams exactly one diagnosis (the tick
		// pushes the symptom past its grace window).
		at := b.Start.Add(b.Duration).Add(time.Hour)
		sym := EventJSON{
			Name: event.EBGPFlap, Start: at, End: at.Add(time.Minute),
			Loc: LocationJSON{Type: "router:neighbor", A: "pop00-per1", B: "10.99.0.1"},
		}
		tick := EventJSON{
			Name: "synthetic tick", Start: at.Add(48 * time.Hour), End: at.Add(48 * time.Hour),
			Loc: LocationJSON{Type: "router", A: "pop00-per1"},
		}
		code, body := post(t, ts, "/v1/ingest", IngestRequest{Events: []EventJSON{sym, tick}})
		if code != http.StatusOK {
			t.Fatalf("event ingest: %d %s", code, body)
		}

		var live StreamDiagnosisJSON
		select {
		case data, ok := <-lines:
			if !ok {
				t.Fatal("stream closed before delivering a diagnosis")
			}
			if err := json.Unmarshal([]byte(data), &live); err != nil {
				t.Fatalf("stream frame %q: %v", data, err)
			}
		case <-time.After(20 * time.Second):
			t.Fatal("no SSE diagnosis within 20s of the triggering ingest")
		}
		if live.Seq < 1 || live.App != "bgpflap" {
			t.Fatalf("streamed diagnosis = seq %d app %q", live.Seq, live.App)
		}
		cancel()

		// The ring agrees: /v1/recent returns the same diagnosis, and a
		// replay catch-up stream re-serves it.
		code, body = get(t, ts, "/v1/recent")
		if code != http.StatusOK {
			t.Fatalf("recent: %d %s", code, body)
		}
		var recent struct {
			LastSeq   int64                 `json:"last_seq"`
			Diagnoses []StreamDiagnosisJSON `json:"diagnoses"`
		}
		if err := json.Unmarshal(body, &recent); err != nil {
			t.Fatal(err)
		}
		if recent.LastSeq < live.Seq || len(recent.Diagnoses) == 0 {
			t.Fatalf("recent = last_seq %d, %d diagnoses", recent.LastSeq, len(recent.Diagnoses))
		}
		found := false
		for _, e := range recent.Diagnoses {
			if e.Seq == live.Seq {
				found = true
				a, _ := json.Marshal(e)
				bb, _ := json.Marshal(live)
				if !bytes.Equal(a, bb) {
					t.Error("recent entry differs from the streamed frame")
				}
			}
		}
		if !found {
			t.Errorf("seq %d not in /v1/recent", live.Seq)
		}
	})

	// Rollup determinism across restart: the browser answers byte-
	// identically after a graceful reopen and after a crash that forces
	// the WAL to be rebuilt from the ingest journal.
	bdBefore := map[string][]byte{}
	for _, app := range []string{"bgpflap", "cdn"} {
		_, body := get(t, ts, "/v1/breakdown?app="+app)
		bdBefore[app] = body
	}
	_, trendBefore := get(t, ts, "/v1/trend?name="+url.QueryEscape(event.EBGPFlap))
	ts.Close()
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, crash := range []bool{false, true} {
		if crash {
			removeWALState(t, dir)
		}
		s2 := openServer(t, dir, b)
		ts2 := httptest.NewServer(s2.Handler())
		for _, app := range []string{"bgpflap", "cdn"} {
			if _, body := get(t, ts2, "/v1/breakdown?app="+app); !bytes.Equal(body, bdBefore[app]) {
				t.Errorf("crash=%v: %s breakdown changed across restart\n got %s\nwant %s",
					crash, app, body, bdBefore[app])
			}
		}
		if _, body := get(t, ts2, "/v1/trend?name="+url.QueryEscape(event.EBGPFlap)); !bytes.Equal(body, trendBefore) {
			t.Errorf("crash=%v: trend changed across restart", crash)
		}
		ts2.Close()
		if err := s2.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSSESlowConsumerEviction: a subscriber that stops reading is evicted
// by publish (channel closed) instead of blocking the publisher; healthy
// clients keep receiving.
func TestSSESlowConsumerEviction(t *testing.T) {
	h := newSSEHub()
	slow := h.subscribe()
	if !h.active() {
		t.Fatal("hub inactive with a subscriber")
	}
	done := make(chan struct{})
	go func() { // must never block, no matter how far behind slow is
		for i := 1; i <= sseClientBuf+10; i++ {
			h.publish(int64(i), []byte("frame"))
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("publish blocked on a slow consumer")
	}

	got := 0
	for range slow.ch { // closed by the eviction
		got++
	}
	if got != sseClientBuf {
		t.Errorf("slow client buffered %d frames, want %d", got, sseClientBuf)
	}
	if h.active() {
		t.Error("evicted client still counted as subscribed")
	}
	h.unsubscribe(slow) // the handler's deferred detach: must not double-close

	fresh := h.subscribe()
	h.publish(99, []byte("after"))
	select {
	case m := <-fresh.ch:
		if m.seq != 99 {
			t.Errorf("fresh client got seq %d", m.seq)
		}
	default:
		t.Error("fresh client received nothing after the eviction")
	}
	h.unsubscribe(fresh)
}

// TestEventsPaginationBounded: /v1/events answers in bounded pages no
// matter how large the store is — the default page, the hard cap, and the
// cursor walk.
func TestEventsPaginationBounded(t *testing.T) {
	st := store.NewSharded(1, nil)
	const total = maxEventsPage + 500
	t0 := time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < total; i++ {
		st.Add(event.Instance{Name: "pagetest", Start: t0.Add(time.Duration(i) * time.Second),
			End: t0.Add(time.Duration(i+1) * time.Second)})
	}
	st.Add(event.Instance{Name: "other", Start: t0, End: t0.Add(time.Second)})
	s := &Server{cfg: Config{RequestTimeout: time.Minute}, st: st, closing: make(chan struct{})}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	type page struct {
		Events []EventJSON `json:"events"`
		More   bool        `json:"more"`
		Next   int         `json:"next"`
	}
	fetch := func(path string) page {
		t.Helper()
		code, body := get(t, ts, path)
		if code != http.StatusOK {
			t.Fatalf("%s: %d %s", path, code, body)
		}
		var p page
		if err := json.Unmarshal(body, &p); err != nil {
			t.Fatal(err)
		}
		return p
	}

	// Regression: the unbounded pre-pagination response returned every
	// instance; now the default page caps it.
	p := fetch("/v1/events?name=pagetest")
	if len(p.Events) != defaultEventsPage || !p.More {
		t.Fatalf("default page = %d events, more=%v; want %d, true", len(p.Events), p.More, defaultEventsPage)
	}
	// An absurd limit is clamped to the hard cap.
	p = fetch("/v1/events?name=pagetest&limit=9999999")
	if len(p.Events) != maxEventsPage || !p.More {
		t.Fatalf("capped page = %d events, more=%v; want %d, true", len(p.Events), p.More, maxEventsPage)
	}

	// The cursor walk visits every instance exactly once, in ID order.
	seen := map[int]bool{}
	path := "/v1/events?name=pagetest&limit=4000"
	for {
		p = fetch(path)
		lastID := -1
		for _, e := range p.Events {
			if e.ID <= lastID {
				t.Fatalf("page not in ID order: %d after %d", e.ID, lastID)
			}
			lastID = e.ID
			if seen[e.ID] {
				t.Fatalf("id %d served twice", e.ID)
			}
			seen[e.ID] = true
		}
		if !p.More {
			break
		}
		path = "/v1/events?name=pagetest&limit=4000&after=" + strconv.Itoa(p.Next)
	}
	if len(seen) != total {
		t.Fatalf("cursor walk saw %d instances, want %d", len(seen), total)
	}

	if code, _ := get(t, ts, "/v1/events?name=pagetest&limit=banana"); code != http.StatusBadRequest {
		t.Errorf("bad limit: %d", code)
	}
	if code, _ := get(t, ts, "/v1/events?name=pagetest&after=-2"); code != http.StatusBadRequest {
		t.Errorf("bad after: %d", code)
	}
	// The summary form (no name/limit/after) is unchanged.
	code, body := get(t, ts, "/v1/events")
	if code != http.StatusOK || !bytes.Contains(body, []byte(`"names"`)) {
		t.Errorf("summary form broken: %d %s", code, body)
	}
}
