package server

import (
	"fmt"
	"strings"
	"time"

	"grca/internal/engine"
	"grca/internal/event"
	"grca/internal/locus"
)

// The wire types of the /v1 API. Every internal type crosses the HTTP
// boundary through one of these — locus types travel as their names, not
// their numeric codes, so clients never depend on enum ordering.

// LocationJSON is a locus.Location on the wire.
type LocationJSON struct {
	Type string `json:"type"`
	A    string `json:"a,omitempty"`
	B    string `json:"b,omitempty"`
}

func locationJSON(l locus.Location) LocationJSON {
	return LocationJSON{Type: l.Type.String(), A: l.A, B: l.B}
}

func (lj LocationJSON) location() (locus.Location, error) {
	t, err := locus.ParseType(lj.Type)
	if err != nil {
		return locus.Location{}, err
	}
	return locus.Location{Type: t, A: lj.A, B: lj.B}, nil
}

// EventJSON is an event instance on the wire.
type EventJSON struct {
	ID    int               `json:"id,omitempty"`
	Name  string            `json:"name"`
	Start time.Time         `json:"start"`
	End   time.Time         `json:"end"`
	Loc   LocationJSON      `json:"loc"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

func eventJSON(in *event.Instance) EventJSON {
	return EventJSON{
		ID: in.ID, Name: in.Name,
		Start: in.Start, End: in.End,
		Loc: locationJSON(in.Loc), Attrs: in.Attrs,
	}
}

func (e EventJSON) instance() (event.Instance, error) {
	if strings.TrimSpace(e.Name) == "" {
		return event.Instance{}, fmt.Errorf("event name is required")
	}
	if e.Start.IsZero() || e.End.IsZero() {
		return event.Instance{}, fmt.Errorf("event %q: start and end are required", e.Name)
	}
	if e.End.Before(e.Start) {
		return event.Instance{}, fmt.Errorf("event %q: end precedes start", e.Name)
	}
	loc, err := e.Loc.location()
	if err != nil {
		return event.Instance{}, fmt.Errorf("event %q: %v", e.Name, err)
	}
	return event.Instance{
		Name: e.Name, Start: e.Start.UTC(), End: e.End.UTC(),
		Loc: loc, Attrs: e.Attrs,
	}, nil
}

// IngestRequest is the body of POST /v1/ingest. Exactly one mode:
// raw feed lines (Source+Lines, the Data Collector path, loading phase)
// or normalized events (Events, any phase; streamed through the
// realtime processors once the system is finalized).
type IngestRequest struct {
	Source string      `json:"source,omitempty"`
	Lines  string      `json:"lines,omitempty"`
	Events []EventJSON `json:"events,omitempty"`
}

// IngestResponse reports what one accepted batch did.
type IngestResponse struct {
	// Stored is how many normalized instances the batch added to the
	// store (for feeds, after parsing/detection; raw lines in ≠ events out).
	Stored int `json:"stored"`
	// Lines/Malformed report feed-mode parse volume for this server's
	// lifetime source stats delta is not tracked per batch; totals live
	// in /v1/stats.
	Late int `json:"late,omitempty"`
	// Diagnoses carries streaming diagnoses emitted by this batch
	// (normalized-event mode after finalize).
	Diagnoses []DiagnosisJSON `json:"diagnoses,omitempty"`
}

// DiagnoseRequest is the body of POST /v1/diagnose: one symptom by store
// ID, or every symptom of the application (All).
type DiagnoseRequest struct {
	App   string `json:"app"`
	ID    int    `json:"id,omitempty"`
	All   bool   `json:"all,omitempty"`
	Trace bool   `json:"trace,omitempty"`
}

// DiagnoseResponse is the body of a successful diagnosis.
type DiagnoseResponse struct {
	App       string          `json:"app"`
	Diagnoses []DiagnosisJSON `json:"diagnoses"`
}

// CauseJSON is one root cause of a diagnosis.
type CauseJSON struct {
	Event     string      `json:"event"`
	Priority  int         `json:"priority"`
	Chain     []string    `json:"chain,omitempty"`
	Instances []EventJSON `json:"instances,omitempty"`
}

// NodeJSON is one vertex of the evidence tree; Rule is the dgraph rule
// key of the edge from the parent (empty at the root).
type NodeJSON struct {
	Event    string     `json:"event"`
	Instance EventJSON  `json:"instance"`
	Rule     string     `json:"rule,omitempty"`
	Priority int        `json:"priority,omitempty"`
	Children []NodeJSON `json:"children,omitempty"`
}

// DiagnosisJSON is one full diagnosis on the wire. It deliberately omits
// wall-clock latency so that two diagnoses of the same symptom over the
// same data are byte-identical — the parity contract with the batch CLI.
type DiagnosisJSON struct {
	// App is set on streaming diagnoses inside an IngestResponse, where
	// several applications share the stream; /v1/diagnose responses name
	// the app once at the top level instead.
	App      string      `json:"app,omitempty"`
	Symptom  EventJSON   `json:"symptom"`
	Label    string      `json:"label"`
	Primary  string      `json:"primary"`
	Causes   []CauseJSON `json:"causes,omitempty"`
	Warnings []string    `json:"warnings,omitempty"`
	Tree     NodeJSON    `json:"tree"`
	Trace    []string    `json:"trace,omitempty"`
}

func nodeJSON(n *engine.Node) NodeJSON {
	out := NodeJSON{Event: n.Event, Instance: eventJSON(n.Instance)}
	if n.Rule.Symptom != "" {
		out.Rule = n.Rule.Key()
		out.Priority = n.Rule.Priority
	}
	for _, c := range n.Children {
		out.Children = append(out.Children, nodeJSON(c))
	}
	return out
}

// diagnosisJSON renders an engine diagnosis for the wire.
func diagnosisJSON(d engine.Diagnosis) DiagnosisJSON {
	out := DiagnosisJSON{
		Symptom:  eventJSON(d.Symptom),
		Label:    d.Label(),
		Primary:  d.Primary(),
		Warnings: d.Warnings,
		Tree:     nodeJSON(d.Root),
	}
	for _, c := range d.Causes {
		cj := CauseJSON{Event: c.Event, Priority: c.Priority, Chain: c.Chain}
		for _, in := range c.Instances {
			cj.Instances = append(cj.Instances, eventJSON(in))
		}
		out.Causes = append(out.Causes, cj)
	}
	if d.Trace != nil {
		var sb strings.Builder
		if err := d.Trace.Write(&sb); err == nil {
			out.Trace = strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
		}
	}
	return out
}

// ErrorJSON is every non-2xx body.
type ErrorJSON struct {
	Error string `json:"error"`
}

// decodeEvents converts a wire batch to instances, rejecting the whole
// batch on the first invalid event (nothing is journaled for it).
func decodeEvents(evs []EventJSON) ([]event.Instance, error) {
	out := make([]event.Instance, 0, len(evs))
	for _, ej := range evs {
		in, err := ej.instance()
		if err != nil {
			return nil, err
		}
		out = append(out, in)
	}
	return out, nil
}
