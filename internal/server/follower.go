package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"grca/internal/conf"
	"grca/internal/event"
	"grca/internal/locus"
	"grca/internal/obs"
	"grca/internal/replica"
	"grca/internal/rollup"
	"grca/internal/wal"
	"grca/internal/wire"
)

// followerState is the replica-only half of a Server: the stream
// clients, the per-shard WAL sinks, and the lag bookkeeping. The live
// store is the same scratch pipeline crash recovery builds — the
// follower IS a recovery that never stops replaying.
type followerState struct {
	primary string // primary base URL, no trailing slash
	id      string // stable follower stream ID (REPLICA file)
	bootID  string // primary incarnation being replicated

	sinks   []*replica.WALSink
	clients []*replica.Client

	appliedSeq atomic.Int64 // last journal sequence applied (and locally journaled)
	walNext    []atomic.Int64

	// sealed means the clients are stopped and the local journals and
	// sinks are closed; sealOnce makes the seal idempotent between
	// Promote and Shutdown, and promoteOnce serializes promotion without
	// holding any lock across the reopen (which acquires the whole
	// pipeline's lock set — a mutex here would nest above all of them).
	sealed      atomic.Bool
	sealOnce    sync.Once
	sealErr     error
	promoting   atomic.Bool
	promoteOnce sync.Once
	promoteInfo PromoteInfo
	promoteErr  error

	mu        sync.Mutex
	hb        replica.Msg // last heartbeat, any stream
	hbAt      time.Time
	lastMsg   time.Time
	streamErr error
	snapBoots []int
}

// promotedNode is the primary a promoted replica delegates to.
type promotedNode struct {
	srv  *Server
	h    http.Handler
	info PromoteInfo
}

// PromoteInfo is the promote endpoint's answer.
type PromoteInfo struct {
	Role string `json:"role"`
	// BootID is the promoted node's new primary incarnation.
	BootID string `json:"boot_id"`
	// AppliedSeq is the last stream sequence applied before the seal.
	AppliedSeq int `json:"applied_seq"`
	// Recovery is the reopen's reconciliation report: WALRebuilt is the
	// per-shard digest check's verdict on the shipped WAL state.
	Recovery RecoveryInfo `json:"recovery"`
	// Digests are the promoted store's per-shard digests.
	Digests []string `json:"digests"`
}

// fetchPrimaryMeta fetches the primary's rendezvous document, retrying
// briefly so a follower and its primary can start together.
func fetchPrimaryMeta(base string) (ReplicationMetaJSON, error) {
	var meta ReplicationMetaJSON
	var lastErr error
	for attempt := 0; attempt < 10; attempt++ {
		if attempt > 0 {
			time.Sleep(500 * time.Millisecond)
		}
		resp, err := http.Get(base + "/v1/replication/meta")
		if err != nil {
			lastErr = err
			continue
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close() //nolint:errcheck // read side
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode != http.StatusOK {
			lastErr = fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(body))
			continue
		}
		if err := json.Unmarshal(body, &meta); err != nil {
			lastErr = err
			continue
		}
		if meta.BootID == "" || meta.Shards < 1 {
			lastErr = fmt.Errorf("malformed meta document")
			continue
		}
		return meta, nil
	}
	return meta, fmt.Errorf("server: primary %s: %v", base, lastErr)
}

// prepareReplicaState reconciles the data dir with the primary
// incarnation: same boot ID resumes the shipped state, a different one
// wipes it (sequences may have been renumbered; shipped history can
// only be replaced). Returns this follower's stable stream ID.
func prepareReplicaState(dataDir string, n int, bootID string) (string, error) {
	path := replicaFile(dataDir)
	id := ""
	data, err := os.ReadFile(path)
	switch {
	case err == nil:
		lines := strings.Split(strings.TrimSpace(string(data)), "\n")
		if len(lines) >= 2 {
			id = strings.TrimSpace(lines[1])
			if strings.TrimSpace(lines[0]) == bootID {
				return id, nil
			}
		}
		// Boot ID changed (or the marker is malformed): drop every shard's
		// shipped journal, WAL, and snapshot state and resync from scratch.
		for i := 0; i < n; i++ {
			dir := shardDir(dataDir, n, i)
			if err := os.Remove(journalPath(dir)); err != nil && !os.IsNotExist(err) {
				return "", err
			}
			for _, sub := range []string{"wal", "snap"} {
				if err := os.RemoveAll(filepath.Join(dir, sub)); err != nil {
					return "", err
				}
			}
		}
	case !os.IsNotExist(err):
		return "", err
	}
	if id == "" {
		id = "replica-" + newBootID()
	}
	if err := os.WriteFile(path, []byte(bootID+"\n"+id+"\n"), 0o644); err != nil {
		return "", err
	}
	return id, nil
}

// openFollower opens the service as a live read replica: replay the
// locally shipped journals exactly as crash recovery would, then keep
// applying the primary's merged journal stream through the same path
// while per-shard WAL streams materialize segment state on disk for a
// later promotion.
func openFollower(cfg Config) (*Server, error) {
	n := cfg.Shards
	if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
		return nil, err
	}
	primary := strings.TrimRight(cfg.ReplicaOf, "/")
	meta, err := fetchPrimaryMeta(primary)
	if err != nil {
		return nil, err
	}
	if meta.Shards != n {
		return nil, fmt.Errorf("server: primary %s runs %d shards, replica configured with %d", primary, meta.Shards, n)
	}
	id, err := prepareReplicaState(cfg.DataDir, n, meta.BootID)
	if err != nil {
		return nil, err
	}
	if err := checkShardMarker(cfg.DataDir, n); err != nil {
		return nil, err
	}
	topo, err := conf.Parse(cfg.Bundle.Configs, cfg.Bundle.Inventory)
	if err != nil {
		return nil, fmt.Errorf("server: config archive: %v", err)
	}
	rep, err := replayJournals(cfg, topo)
	if err != nil {
		return nil, err
	}

	fs := &followerState{
		primary:   primary,
		id:        id,
		bootID:    meta.BootID,
		sinks:     make([]*replica.WALSink, n),
		walNext:   make([]atomic.Int64, n),
		snapBoots: make([]int, n),
	}
	fs.appliedSeq.Store(int64(rep.maxSeq))

	// Shard entries carry the live store shard and the local slice of the
	// shipped journal; there is no WAL, queue, or applier — the journal
	// stream's apply goroutine is the only writer.
	shards := make([]*shard, n)
	opened := false
	defer func() {
		if opened {
			return
		}
		for _, sh := range shards {
			if sh != nil {
				sh.jour.Close() //nolint:errcheck // being discarded
			}
		}
		for _, sk := range fs.sinks {
			if sk != nil {
				sk.Close() //nolint:errcheck // being discarded
			}
		}
	}()
	for i := range shards {
		dir := shardDir(cfg.DataDir, n, i)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		jour, err := wal.OpenJournal(journalPath(dir))
		if err != nil {
			return nil, err
		}
		shards[i] = &shard{st: rep.shards[i], jour: jour, idx: i}
		sink, err := replica.OpenWALSink(dir, 0)
		if err != nil {
			return nil, err
		}
		fs.sinks[i] = sink
		fs.walNext[i].Store(int64(sink.Frontier()))
	}

	s := &Server{
		cfg: cfg, topo: topo, shards: shards, st: rep.scratch, coll: rep.coll,
		roll:       rollup.New(rollup.Config{}),
		hub:        newSSEHub(),
		seq:        rep.maxSeq + 1,
		routeCache: map[locus.Location]int{},
		closing:    make(chan struct{}),
		follower:   fs,
		recovery: RecoveryInfo{
			Batches: rep.batches, Finalized: rep.finalized,
			Events: rep.scratch.Len(), Shards: n,
		},
	}
	s.finishCond = sync.NewCond(&s.finishMu)
	s.roll.SeedEvents(s.st)
	s.st.OnAppend(s.roll.ObserveEvent)
	s.st.OnEvict(s.roll.EvictEvents)
	if rep.finalized {
		if err := s.installServing(true); err != nil {
			return nil, err
		}
	}
	mRecovered.Add(int64(rep.batches))
	mReplSeq.Set(int64(rep.maxSeq))
	opened = true
	s.startFollowerClients()
	return s, nil
}

// startFollowerClients launches the journal stream client and one WAL
// stream client per shard.
func (s *Server) startFollowerClients() {
	fs := s.follower
	jc := &replica.Client{
		URL: func(from int) string {
			return fmt.Sprintf("%s/v1/replication/journal?id=%s&from=%d",
				fs.primary, url.QueryEscape(fs.id), from)
		},
		From:    func() int { return int(fs.appliedSeq.Load()) },
		Handle:  s.handleJournalMsg,
		OnState: fs.noteState,
	}
	fs.clients = append(fs.clients, jc)
	for i := range s.shards {
		shard := i
		sink := fs.sinks[i]
		wc := &replica.Client{
			URL: func(from int) string {
				return fmt.Sprintf("%s/v1/replication/wal?id=%s&shard=%d&from=%d",
					fs.primary, url.QueryEscape(fs.id), shard, from)
			},
			From:    sink.Frontier,
			Handle:  func(m replica.Msg) error { return s.handleWALMsg(shard, m) },
			OnState: fs.noteState,
		}
		fs.clients = append(fs.clients, wc)
	}
	for _, c := range fs.clients {
		c.Start()
	}
}

// checkHello validates a stream's opening frame against the incarnation
// this follower is bound to. Any mismatch is fatal — reconnecting into
// the same primary cannot fix it; the operator restarts the replica,
// which resyncs via prepareReplicaState.
func (fs *followerState) checkHello(m replica.Msg, stream byte, shards int) error {
	if m.Ver != replica.ProtocolVersion {
		return fmt.Errorf("primary speaks protocol %d, this replica %d", m.Ver, replica.ProtocolVersion)
	}
	if m.BootID != fs.bootID {
		return fmt.Errorf("primary boot ID changed (%s -> %s): restart the replica to resync", fs.bootID, m.BootID)
	}
	if m.Shards != shards {
		return fmt.Errorf("primary reports %d shards, replica runs %d", m.Shards, shards)
	}
	if m.Stream != stream {
		return fmt.Errorf("wrong stream kind %q", m.Stream)
	}
	return nil
}

// handleJournalMsg applies one journal-stream message. Runs on the
// journal client's goroutine — the follower's only writer to the live
// store and the local journals.
func (s *Server) handleJournalMsg(m replica.Msg) error {
	fs := s.follower
	switch m.Type {
	case replica.MsgHello:
		if err := fs.checkHello(m, replica.StreamJournal, len(s.shards)); err != nil {
			return replica.Fatal(err)
		}
	case replica.MsgJournalRec:
		if m.Shard >= len(s.shards) {
			return replica.Fatal(fmt.Errorf("journal record for shard %d of %d", m.Shard, len(s.shards)))
		}
		if err := s.applyJournalRecord(m.Shard, m.Rec); err != nil {
			return replica.Fatal(err)
		}
		fs.noteMsg()
	case replica.MsgHeartbeat:
		fs.noteHeartbeat(m)
		s.updateLag(m)
		s.syncFollowerJournals()
	case replica.MsgEOF:
		// The client loop already treats EOF as end-of-connection; seen
		// here only if the primary interleaves it oddly — ignore.
	default:
		return replica.Fatal(fmt.Errorf("unexpected message type %d on the journal stream", m.Type))
	}
	return nil
}

// applyJournalRecord journals one shipped record locally and applies it
// to the live pipeline — the same switch crash recovery's replay runs,
// incrementally, under dispatchMu so reads never see a half-applied
// batch.
func (s *Server) applyJournalRecord(shard int, rec []byte) error {
	seq, kind, source, body, err := decodeJournalRecord(rec)
	if err != nil {
		return err
	}
	s.dispatchMu.Lock()
	defer s.dispatchMu.Unlock()
	fs := s.follower
	if seq <= int(fs.appliedSeq.Load()) {
		return nil // reconnect overlap: already journaled and applied
	}
	// Local journal first: the live store is rebuilt from the journals at
	// boot, so everything applied must be journaled (durability is async;
	// a torn tail just re-ships).
	if err := s.shards[shard].jour.AppendNoSync(rec); err != nil {
		return err
	}
	switch kind {
	case recFeed:
		// Parse errors are deterministic and already answered by the
		// primary; state after the partial ingest is identical either way.
		s.coll.Ingest(source, bytes.NewReader(body)) //nolint:errcheck // see above
	case recFinalize:
		if res := s.applyFinalize(); res.err != nil {
			return res.err
		}
	case recEvents:
		var evs []EventJSON
		if err := json.Unmarshal(body, &evs); err != nil {
			return err
		}
		stored := make([]*event.Instance, 0, len(evs))
		for _, ej := range evs {
			in, err := ej.instance()
			if err != nil {
				return err
			}
			stored = append(stored, s.st.Add(in))
		}
		s.observeStored(stored)
	case recEventsWire:
		b, err := wire.Decode(body)
		if err != nil {
			return err
		}
		if b.Kind != wire.KindEvents {
			return fmt.Errorf("journaled wire kind %d, want events", b.Kind)
		}
		stored := make([]*event.Instance, 0, len(b.Events))
		for i := range b.Events {
			stored = append(stored, s.st.Add(b.Events[i]))
		}
		s.observeStored(stored)
	default:
		return fmt.Errorf("unknown journal record kind %d", kind)
	}
	s.seq = seq + 1
	fs.appliedSeq.Store(int64(seq))
	mReplApplied.Inc()
	mReplSeq.Set(int64(seq))
	return nil
}

// handleWALMsg feeds one WAL-stream message into shard's sink. Runs on
// that shard's WAL client goroutine — the sink's only user.
func (s *Server) handleWALMsg(shard int, m replica.Msg) error {
	fs := s.follower
	sink := fs.sinks[shard]
	var err error
	switch m.Type {
	case replica.MsgHello:
		if e := fs.checkHello(m, replica.StreamWAL, len(s.shards)); e != nil {
			return replica.Fatal(e)
		}
	case replica.MsgWALRec:
		err = sink.WriteRecord(m.Rec)
	case replica.MsgSnapBegin:
		err = sink.BeginSnapshot(m.Next, m.Size)
		if err == nil {
			fs.mu.Lock()
			fs.snapBoots[shard]++
			fs.mu.Unlock()
		}
	case replica.MsgSnapChunk:
		err = sink.WriteSnapshotChunk(m.Chunk)
	case replica.MsgSnapEnd:
		err = sink.EndSnapshot()
	case replica.MsgHeartbeat:
		fs.noteHeartbeat(m)
		err = sink.Sync()
	case replica.MsgEOF:
	default:
		return replica.Fatal(fmt.Errorf("unexpected message type %d on the WAL stream", m.Type))
	}
	if err != nil {
		// Sink failures (disk, protocol misuse) do not heal by reconnecting.
		return replica.Fatal(err)
	}
	fs.walNext[shard].Store(int64(sink.Frontier()))
	fs.noteMsg()
	return nil
}

func (fs *followerState) noteMsg() {
	fs.mu.Lock()
	fs.lastMsg = obs.Now()
	fs.mu.Unlock()
}

func (fs *followerState) noteHeartbeat(m replica.Msg) {
	fs.mu.Lock()
	fs.hb = m // JournalBytes/WALNext are fresh allocations, safe to retain
	fs.hbAt = obs.Now()
	fs.lastMsg = fs.hbAt
	fs.mu.Unlock()
}

// noteState records stream health transitions (Client.OnState).
func (fs *followerState) noteState(err error) {
	fs.mu.Lock()
	fs.streamErr = err
	fs.mu.Unlock()
}

// updateLag refreshes the follower lag gauges from a heartbeat: bytes of
// journal not yet shipped, WAL records not yet sunk.
func (s *Server) updateLag(hb replica.Msg) {
	fs := s.follower
	var lagBytes int64
	for i := range s.shards {
		if i >= len(hb.JournalBytes) {
			break
		}
		local := int64(0)
		if st, err := os.Stat(journalPath(shardDir(s.cfg.DataDir, len(s.shards), i))); err == nil {
			local = st.Size()
		}
		if d := hb.JournalBytes[i] - local; d > 0 {
			lagBytes += d
		}
	}
	var lagRecs int64
	for i := range s.shards {
		if i >= len(hb.WALNext) {
			break
		}
		if d := int64(hb.WALNext[i]) - fs.walNext[i].Load(); d > 0 {
			lagRecs += d
		}
	}
	mReplLagBytes.Set(lagBytes)
	mReplLagRecs.Set(lagRecs)
}

// syncFollowerJournals fsyncs the local journals at heartbeat cadence
// (shipped records are written without fsync on the apply path).
func (s *Server) syncFollowerJournals() {
	s.dispatchMu.Lock()
	defer s.dispatchMu.Unlock()
	if s.follower.isSealed() {
		return
	}
	for _, sh := range s.shards {
		sh.jour.Sync() //nolint:errcheck // advisory; the apply path surfaces real write errors
	}
}

func (fs *followerState) isSealed() bool { return fs.sealed.Load() }

// sealFollower stops the stream clients and closes the local journals
// and sinks; after it returns no goroutine touches follower disk state.
// Idempotent (sealOnce); called by Promote and Shutdown.
func (s *Server) sealFollower() error {
	fs := s.follower
	fs.sealOnce.Do(func() {
		for _, c := range fs.clients {
			c.Stop()
		}
		for _, c := range fs.clients {
			c.Wait()
		}
		var err error
		s.dispatchMu.Lock() // exclude a final in-flight apply's journal write
		fs.sealed.Store(true)
		for _, sh := range s.shards {
			if e := sh.jour.Sync(); e != nil && err == nil {
				err = e
			}
			if e := sh.jour.Close(); e != nil && err == nil {
				err = e
			}
		}
		s.dispatchMu.Unlock()
		for _, sk := range fs.sinks {
			if e := sk.Close(); e != nil && err == nil {
				err = e
			}
		}
		fs.sealErr = err
	})
	return fs.sealErr
}

// Promote turns this replica into a primary: seal the streams, then
// reopen the data directory exactly as a restarting primary would. The
// reopen's journal-vs-WAL reconciliation is the promotion's digest
// verification — every shard whose shipped WAL state disagrees with the
// shipped journal history is rebuilt from the journals, so the promoted
// store always equals a clean single-node replay of the same journal.
// The promoted server takes over request handling atomically; this
// server's handler delegates to it from then on.
func (s *Server) Promote() (PromoteInfo, error) {
	fs := s.follower
	if fs == nil {
		return PromoteInfo{}, fmt.Errorf("server: not a replica")
	}
	// Promotion runs exactly once; concurrent callers block on the Once
	// and share the stored outcome (a failed promotion is sticky — the
	// local state is suspect, restart the process to retry). No lock is
	// held across the reopen.
	fs.promoting.Store(true)
	fs.promoteOnce.Do(func() { fs.promoteInfo, fs.promoteErr = s.promote() })
	return fs.promoteInfo, fs.promoteErr
}

func (s *Server) promote() (PromoteInfo, error) {
	fs := s.follower
	if err := s.sealFollower(); err != nil {
		return PromoteInfo{}, err
	}
	if err := os.Remove(replicaFile(s.cfg.DataDir)); err != nil && !os.IsNotExist(err) {
		return PromoteInfo{}, err
	}
	cfg := s.cfg
	cfg.ReplicaOf = ""
	ps, err := Open(cfg)
	if err != nil {
		return PromoteInfo{}, fmt.Errorf("reopening as primary: %v", err)
	}
	info := PromoteInfo{
		Role:       "primary",
		BootID:     ps.bootID,
		AppliedSeq: int(fs.appliedSeq.Load()),
		Recovery:   ps.Recovery(),
	}
	for _, sh := range ps.shards {
		info.Digests = append(info.Digests, wal.StoreDigest(sh.st))
	}
	node := &promotedNode{srv: ps, h: ps.Handler(), info: info}
	s.promoted.Store(node)
	return info, nil
}

// shutdownFollower is Shutdown's replica path: seal the streams, close
// the processors, and shut the promoted primary down if one exists.
func (s *Server) shutdownFollower(ctx context.Context, err error) error {
	fs := s.follower
	if fs.promoting.Load() {
		// Wait out an in-flight promotion so the promoted server below
		// is visible for shutdown; the empty Do blocks until it returns.
		fs.promoteOnce.Do(func() {})
	}
	if e := s.sealFollower(); e != nil && err == nil {
		err = e
	}
	s.mu.RLock()
	procs := s.procs
	s.mu.RUnlock()
	for _, a := range appSpecs() {
		if p, ok := procs[a.name]; ok {
			p.Close()
		}
	}
	if node := s.promoted.Load(); node != nil {
		if e := node.srv.Shutdown(ctx); e != nil && err == nil {
			err = e
		}
	}
	return err
}

// status renders /v1/replication/status for a replica.
func (fs *followerState) status(s *Server) ReplicationStatusJSON {
	fs.mu.Lock()
	hb, hbAt, lastMsg, serr := fs.hb, fs.hbAt, fs.lastMsg, fs.streamErr
	snapBoots := append([]int(nil), fs.snapBoots...)
	fs.mu.Unlock()
	applied := int(fs.appliedSeq.Load())
	st := ReplicationStatusJSON{
		Role:       "replica",
		BootID:     fs.bootID,
		Shards:     len(s.shards),
		Primary:    fs.primary,
		AppliedSeq: &applied,
	}
	if node := s.promoted.Load(); node != nil {
		// Promoted: report the new primary's identity through the old path.
		return ReplicationStatusJSON{
			Role:   "primary",
			BootID: node.info.BootID,
			Shards: len(s.shards),
		}
	}
	if serr != nil {
		st.StreamError = serr.Error()
	}
	if !lastMsg.IsZero() {
		st.LagSeconds = obs.Since(lastMsg).Seconds()
	}
	if !hbAt.IsZero() {
		sealed := hb.Sealed
		st.PrimarySealed = &sealed
	}
	n := len(s.shards)
	for i := 0; i < n; i++ {
		lag := ReplicaShardLag{
			Shard:           i,
			WALNext:         int(fs.walNext[i].Load()),
			SnapBootstraps:  snapBoots[i],
			StreamConnected: serr == nil && !lastMsg.IsZero(),
		}
		if fi, err := os.Stat(journalPath(shardDir(s.cfg.DataDir, n, i))); err == nil {
			lag.JournalBytes = fi.Size()
		}
		if i < len(hb.JournalBytes) {
			lag.PrimaryJournal = hb.JournalBytes[i]
			if d := lag.PrimaryJournal - lag.JournalBytes; d > 0 {
				lag.LagBytes = d
			}
		}
		if i < len(hb.WALNext) {
			lag.PrimaryWALNext = hb.WALNext[i]
			if d := lag.PrimaryWALNext - lag.WALNext; d > 0 {
				lag.WALLag = d
			}
		}
		st.ShardLag = append(st.ShardLag, lag)
	}
	return st
}
