package server

import "net/http"

// handleDashboard serves the minimal embedded Result Browser at
// /browser/: breakdown table, symptom/cause trend bars, and the live
// diagnosis stream, all rendered client-side from the /v1 JSON
// endpoints with no external assets.
func (s *Server) handleDashboard(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write([]byte(dashboardHTML)) //nolint:errcheck // client gone
}

const dashboardHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>G-RCA Result Browser</title>
<style>
  body { font-family: ui-monospace, Menlo, Consolas, monospace; margin: 1.5rem; background: #111; color: #ddd; }
  h1 { font-size: 1.2rem; } h2 { font-size: 1rem; margin: 1.2rem 0 .4rem; color: #9cf; }
  table { border-collapse: collapse; } td, th { padding: .15rem .8rem; text-align: left; }
  th { border-bottom: 1px solid #555; color: #9cf; }
  td.num { text-align: right; }
  .bar { background: #28536b; display: inline-block; height: .7rem; }
  select, button { background: #222; color: #ddd; border: 1px solid #555; padding: .2rem .5rem; }
  #stream div { border-bottom: 1px dotted #333; padding: .15rem 0; }
  .label { color: #fc9; } .muted { color: #777; }
</style>
</head>
<body>
<h1>G-RCA Result Browser</h1>
<p>
  app <select id="app"></select>
  window <select id="window">
    <option value="">all</option><option>1h</option><option>6h</option><option>24h</option>
  </select>
  <button id="refresh">refresh</button>
  <span id="status" class="muted"></span>
</p>
<h2>Root-cause breakdown</h2>
<table><thead><tr><th>Root Cause</th><th>Percentage</th><th>Count</th><th></th></tr></thead>
<tbody id="rows"></tbody></table>
<h2>Symptom trend</h2>
<div id="trend" class="muted">loading…</div>
<h2>Live diagnoses <span id="seq" class="muted"></span></h2>
<div id="stream"></div>
<script>
const apps = ["bgpflap", "cdn", "pim", "backbone"];
const sel = document.getElementById("app");
for (const a of apps) { const o = document.createElement("option"); o.textContent = a; sel.append(o); }
const esc = s => s.replace(/&/g, "&amp;").replace(/</g, "&lt;");

async function refresh() {
  const app = sel.value, win = document.getElementById("window").value;
  const status = document.getElementById("status");
  try {
    const q = win ? "&window=" + win : "";
    const bd = await (await fetch("/v1/breakdown?app=" + app + q)).json();
    if (bd.error) { status.textContent = bd.error; return; }
    status.textContent = bd.total + " symptoms";
    document.getElementById("rows").innerHTML = bd.rows.map(r =>
      "<tr><td>" + esc(r.label) + "</td><td class=num>" + r.percent.toFixed(2) +
      "%</td><td class=num>" + r.count + "</td><td><span class=bar style=\"width:" +
      (2 * r.percent) + "px\"></span></td></tr>").join("");
    const cs = await (await fetch("/v1/causes?app=" + app)).json();
    const root = (await (await fetch("/v1/trend?bin=1h&name=" + encodeURIComponent(
      {bgpflap: "eBGP flap", cdn: "RTT degradation", pim: "PIM adjacency loss",
       backbone: "Packet loss"}[app]))).json());
    const max = Math.max(1, ...root.points.map(p => p.count));
    document.getElementById("trend").innerHTML = root.points.filter(p => p.count > 0).slice(-48).map(p =>
      "<div><span class=muted>" + esc(p.start.slice(0, 16)) + "</span> " +
      "<span class=bar style=\"width:" + (260 * p.count / max) + "px\"></span> " + p.count + "</div>"
    ).join("") || "<span class=muted>no symptom instances in the trend window</span>";
  } catch (e) { status.textContent = String(e); }
}
sel.onchange = refresh;
document.getElementById("window").onchange = refresh;
document.getElementById("refresh").onclick = refresh;
refresh();

const stream = document.getElementById("stream");
const es = new EventSource("/v1/stream?replay=10");
es.addEventListener("diagnosis", ev => {
  const d = JSON.parse(ev.data);
  document.getElementById("seq").textContent = "(seq " + d.seq + ")";
  const row = document.createElement("div");
  row.innerHTML = "<span class=muted>#" + d.seq + "</span> " + esc(d.app) +
    " <span class=label>" + esc(d.label) + "</span> " +
    esc(d.symptom.name) + " @ " + esc(d.symptom.loc.a || "") +
    (d.symptom.loc.b ? ":" + esc(d.symptom.loc.b) : "");
  stream.prepend(row);
  while (stream.childElementCount > 30) stream.lastChild.remove();
});
</script>
</body>
</html>
`
