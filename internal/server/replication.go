package server

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"sync"

	"grca/internal/obs"
	"grca/internal/replica"
)

// Replication: a primary tails its own ingest journals and WAL segments
// and streams them to followers (internal/replica); a follower applies
// the merged journal stream through the same path crash recovery uses
// and serves the read API live. See DESIGN.md §16.

var (
	mReplApplied  = obs.GetCounter("replica.follower.applied.batches")
	mReplSeq      = obs.GetGauge("replica.follower.applied.seq")
	mReplLagBytes = obs.GetGauge("replica.follower.journal.lag.bytes")
	mReplLagRecs  = obs.GetGauge("replica.follower.wal.lag.records")
)

// sealer tracks, per shard, the dispatch sequence numbers assigned to
// journal records that are not yet durably appended to that shard's
// journal file. Its watermark is what lets the replication source merge
// the shard journals into one totally-ordered stream while appliers
// commit concurrently: sealed[j] is a sequence such that no future
// append to shard j's journal will ever carry seq <= sealed[j], so a
// queued record with a lower sequence on another shard is safe to emit.
type sealer struct {
	mu      sync.Mutex
	pending [][]int // per shard: assigned, not yet durably journaled
	last    int     // highest sequence ever assigned
}

func newSealer(shards, last int) *sealer {
	return &sealer{pending: make([][]int, shards), last: last}
}

// assign marks seq as in flight toward shard's journal. Called under
// dispatchMu, before the batch is enqueued (or inline-appended), so the
// watermark can never run ahead of an assignment.
func (se *sealer) assign(shard, seq int) {
	se.mu.Lock()
	defer se.mu.Unlock()
	se.pending[shard] = append(se.pending[shard], seq)
	if seq > se.last {
		se.last = seq
	}
}

// done retires seq: its record is durably in shard's journal — or its
// append failed and the record will never appear, which seals past it
// just the same.
func (se *sealer) done(shard, seq int) {
	se.mu.Lock()
	defer se.mu.Unlock()
	p := se.pending[shard]
	for i := range p {
		if p[i] == seq {
			p[i] = p[len(p)-1]
			se.pending[shard] = p[:len(p)-1]
			return
		}
	}
}

// sealed returns the per-shard watermarks. A shard with in-flight
// records is sealed just below its lowest one; an idle shard is sealed
// at the highest sequence ever assigned (anything later is higher).
func (se *sealer) sealed() []int {
	se.mu.Lock()
	defer se.mu.Unlock()
	out := make([]int, len(se.pending))
	for j, p := range se.pending {
		if len(p) == 0 {
			out[j] = se.last
			continue
		}
		lo := p[0]
		for _, s := range p[1:] {
			if s < lo {
				lo = s
			}
		}
		out[j] = lo - 1
	}
	return out
}

// newBootID returns a fresh primary-incarnation ID. Followers refuse to
// resume a stream across a boot-ID change: recovery after a torn crash
// may renumber sequences (DESIGN.md §15), so shipped history from an
// older incarnation cannot be extended, only replaced.
func newBootID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("server: boot ID entropy: %v", err)) // crypto/rand does not fail on supported platforms
	}
	return hex.EncodeToString(b[:])
}

// initReplicationSource wires the primary side of replication: the
// sealer (fed by dispatch), the follower registry, the stream source
// over the shard journals and WALs, and each WAL's compaction pin.
func (s *Server) initReplicationSource(rep replayResult) {
	n := len(s.shards)
	s.bootID = newBootID()
	s.sealer = newSealer(n, rep.maxSeq)
	s.replReg = replica.NewRegistry(n, s.cfg.ReplicaGrace)
	s.replSrc = replica.NewSource(replica.SourceConfig{
		BootID: s.bootID,
		Shards: n,
		JournalPath: func(i int) string {
			return journalPath(shardDir(s.cfg.DataDir, n, i))
		},
		WALDir: func(i int) string {
			return shardDir(s.cfg.DataDir, n, i)
		},
		Sealed:      s.sealer.sealed,
		WALFrontier: func(i int) int { return s.shards[i].log.Frontier() },
		Registry:    s.replReg,
		Poll:        s.cfg.ReplicaPoll,
	})
	for i := range s.shards {
		shard := i
		s.shards[i].log.SetCompactPin(func() int { return s.replReg.PinWAL(shard) })
	}
}

// isFollower reports whether this server is a read replica (not yet
// promoted).
func (s *Server) isFollower() bool { return s.follower != nil }

// ReplicationMetaJSON is the primary's stream rendezvous document.
type ReplicationMetaJSON struct {
	BootID       string  `json:"boot_id"`
	Shards       int     `json:"shards"`
	Sealed       []int   `json:"sealed"`
	JournalBytes []int64 `json:"journal_bytes"`
	WALNext      []int   `json:"wal_next"`
}

// ReplicationStatusJSON is /v1/replication/status for either role.
type ReplicationStatusJSON struct {
	Role   string `json:"role"` // "primary" | "replica"
	BootID string `json:"boot_id"`
	Shards int    `json:"shards"`

	// Primary side.
	Followers []replica.FollowerStatus `json:"followers,omitempty"`

	// Follower side.
	Primary       string            `json:"primary,omitempty"`
	AppliedSeq    *int              `json:"applied_seq,omitempty"`
	PrimarySealed *int              `json:"primary_sealed,omitempty"`
	ShardLag      []ReplicaShardLag `json:"shard_lag,omitempty"`
	LagSeconds    float64           `json:"lag_seconds,omitempty"`
	StreamError   string            `json:"stream_error,omitempty"`
}

// ReplicaShardLag is one shard's catch-up position on a follower.
type ReplicaShardLag struct {
	Shard           int   `json:"shard"`
	JournalBytes    int64 `json:"journal_bytes"`
	PrimaryJournal  int64 `json:"primary_journal_bytes"`
	LagBytes        int64 `json:"lag_bytes"`
	WALNext         int   `json:"wal_next"`
	PrimaryWALNext  int   `json:"primary_wal_next"`
	WALLag          int   `json:"wal_lag_records"`
	SnapBootstraps  int   `json:"snapshot_bootstraps,omitempty"`
	StreamConnected bool  `json:"stream_connected"`
}

func (s *Server) handleReplMeta(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	if s.isFollower() {
		writeErr(w, http.StatusConflict, "this node is a replica; streams are served by the primary")
		return
	}
	writeJSON(w, http.StatusOK, ReplicationMetaJSON{
		BootID:       s.bootID,
		Shards:       len(s.shards),
		Sealed:       s.sealer.sealed(),
		JournalBytes: s.replSrc.JournalSizes(),
		WALNext:      s.replSrc.WALFrontiers(),
	})
}

func (s *Server) handleReplStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	if s.isFollower() {
		writeJSON(w, http.StatusOK, s.follower.status(s))
		return
	}
	writeJSON(w, http.StatusOK, ReplicationStatusJSON{
		Role:      "primary",
		BootID:    s.bootID,
		Shards:    len(s.shards),
		Followers: s.replReg.Status(),
	})
}

// handleReplJournal streams the merged ingest journal. Mounted raw (no
// request timeout): the stream lives until the follower disconnects or
// the server shuts down.
func (s *Server) handleReplJournal(w http.ResponseWriter, r *http.Request) {
	if s.isFollower() {
		writeErr(w, http.StatusConflict, "this node is a replica; streams are served by the primary")
		return
	}
	id := r.URL.Query().Get("id")
	if id == "" {
		writeErr(w, http.StatusBadRequest, "missing follower id")
		return
	}
	from, err := strconv.Atoi(r.URL.Query().Get("from"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad from cursor")
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	flush := func() {}
	if f, ok := w.(http.Flusher); ok {
		flush = f.Flush
	}
	s.replSrc.ServeJournal(w, flush, id, from, s.closing) //nolint:errcheck // stream end is the follower's signal
}

// handleReplWAL streams one shard's event WAL. Mounted raw, like the
// journal stream.
func (s *Server) handleReplWAL(w http.ResponseWriter, r *http.Request) {
	if s.isFollower() {
		writeErr(w, http.StatusConflict, "this node is a replica; streams are served by the primary")
		return
	}
	id := r.URL.Query().Get("id")
	if id == "" {
		writeErr(w, http.StatusBadRequest, "missing follower id")
		return
	}
	shard, err := strconv.Atoi(r.URL.Query().Get("shard"))
	if err != nil || shard < 0 || shard >= len(s.shards) {
		writeErr(w, http.StatusBadRequest, "bad shard")
		return
	}
	from, err := strconv.Atoi(r.URL.Query().Get("from"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad from cursor")
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	flush := func() {}
	if f, ok := w.(http.Flusher); ok {
		flush = f.Flush
	}
	s.replSrc.ServeWAL(w, flush, id, shard, from, s.closing) //nolint:errcheck // stream end is the follower's signal
}

func (s *Server) handleReplPromote(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if !s.isFollower() {
		writeErr(w, http.StatusConflict, "this node is already a primary")
		return
	}
	info, err := s.Promote()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "promote: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// redirectToPrimary fences a write endpoint on a follower: 307 keeps
// the method and body, pointing the client at the primary.
func (s *Server) redirectToPrimary(w http.ResponseWriter, r *http.Request) {
	target := s.follower.primary + r.URL.Path
	if r.URL.RawQuery != "" {
		target += "?" + r.URL.RawQuery
	}
	http.Redirect(w, r, target, http.StatusTemporaryRedirect)
}

// replicaFile is the follower's identity marker under the data dir: the
// primary incarnation the local state was shipped from, and this
// follower's stable stream ID.
func replicaFile(dataDir string) string { return dataDir + string(os.PathSeparator) + "REPLICA" }
