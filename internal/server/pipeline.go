// Package server turns the G-RCA pipeline into a durable, network-facing
// diagnosis service: the paper's platform ran as a shared system that
// applications fed continuously and queried on demand (§II), and this
// package is that shape — an HTTP/JSON API over a WAL-backed event store.
//
// # Durability model
//
// The store is split into N independent shards (Config.Shards), each a
// complete lane of the write path with its own lock, WAL segment
// directory, snapshot directory, ingest journal, and applier goroutine.
// Two append-only structures per shard carry the state:
//
//   - The event WAL (internal/wal): every normalized instance added to
//     the shard, with snapshots and compaction. It recovers the shard
//     byte-identically and fast.
//   - The ingest journal (journal.log): accepted ingest batches — raw
//     feed lines or normalized-event bodies — plus the finalize marker.
//     Every record carries the batch's global sequence number, so the
//     union of all shard journals, sorted by sequence, is the total
//     ingest history in commit order. The collector's parse state
//     (routing simulations, pairing buffers, rolling baselines) is a
//     function of raw input, not of normalized events, so restart
//     recovery replays this merged journal through a fresh collector.
//
// A batch's journal append (fsynced, on the one shard that owns its
// record) is its commit point; the per-shard WAL commits follow it. On
// startup all shards are reconciled: the merged journal replays into a
// scratch sharded pipeline, and each scratch shard's digest must equal
// the corresponding WAL-recovered shard's. A mismatch — a crash between
// journal fsync and WAL commit, a lost shard directory, or corruption —
// rebuilds that shard's WAL from the journal replay, so recovery always
// converges on the journals' committed batch set. See DESIGN.md §15 for
// the ID-renumbering caveat when unacknowledged batches are torn out of
// the middle of the sequence.
//
// # Pipeline
//
// HTTP handlers dispatch batches under a single admission lock that
// assigns the global sequence number and a dense block of event IDs,
// splits the batch by the location→shard routing function, and enqueues
// each sub-batch onto its shard's bounded queue — when an involved queue
// is full the handler answers 429 with a depth-derived Retry-After
// instead of buffering, before any ID is allocated, so memory stays
// bounded and IDs stay dense under overload. Per-shard applier
// goroutines drain their queues in commit groups (journal fsync, store
// inserts, WAL commit — each amortized across every batch waiting), and
// a single finisher goroutine joins the shards' completions back into
// sequence order to run the streaming processors and reply — so
// responses are byte-identical for every shard count. Reads (diagnose,
// events, stats) bypass the queues and scatter-gather the shards.
package server

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"grca/internal/apps/backbone"
	"grca/internal/apps/bgpflap"
	"grca/internal/apps/cdn"
	"grca/internal/apps/pim"
	"grca/internal/collector"
	"grca/internal/conf"
	"grca/internal/dgraph"
	"grca/internal/engine"
	"grca/internal/event"
	"grca/internal/locus"
	"grca/internal/netmodel"
	"grca/internal/netstate"
	"grca/internal/obs"
	"grca/internal/platform"
	"grca/internal/realtime"
	"grca/internal/replica"
	"grca/internal/rollup"
	"grca/internal/store"
	"grca/internal/wal"
	"grca/internal/wire"
)

var (
	mBatches    = obs.GetCounter("server.ingest.batches")
	mEvents     = obs.GetCounter("server.ingest.events")
	mRejected   = obs.GetCounter("server.http.429")
	mQueueDepth = obs.GetGauge("server.queue.depth")
	mRecovered  = obs.GetCounter("server.recovery.batches")
	mRebuilt    = obs.GetCounter("server.recovery.wal.rebuilt")
)

// Journal record kinds. A record is uvarint seq | kind |
// uvarint len(source) | source | body: raw feed lines for recFeed, the
// JSON event array for recEvents, a wire.KindEvents batch (verbatim
// request bytes) for recEventsWire, empty for recFinalize. seq is the
// batch's global dispatch sequence — records of different batches live
// in different shard journals, and sorting the union by seq recovers
// the total commit order.
const (
	recFeed       = 1
	recFinalize   = 2
	recEvents     = 3
	recEventsWire = 4
)

func encodeRecord(seq int, kind byte, source string, body []byte) []byte {
	out := make([]byte, 0, 10+1+10+len(source)+len(body))
	out = binary.AppendUvarint(out, uint64(seq))
	out = append(out, kind)
	out = binary.AppendUvarint(out, uint64(len(source)))
	out = append(out, source...)
	return append(out, body...)
}

func decodeJournalRecord(p []byte) (seq int, kind byte, source string, body []byte, err error) {
	sq, sz := binary.Uvarint(p)
	if sz <= 0 {
		return 0, 0, "", nil, fmt.Errorf("server: truncated journal record seq")
	}
	p = p[sz:]
	if len(p) < 1 {
		return 0, 0, "", nil, fmt.Errorf("server: empty journal record")
	}
	kind, p = p[0], p[1:]
	n, sz := binary.Uvarint(p)
	if sz <= 0 || n > uint64(len(p)-sz) {
		return 0, 0, "", nil, fmt.Errorf("server: truncated journal record source")
	}
	return int(sq), kind, string(p[sz : sz+int(n)]), p[sz+int(n):], nil
}

// appSpec binds one packaged RCA application to the service. display
// maps raw engine labels to the application's paper-table row names —
// the Result Browser's breakdown vocabulary.
type appSpec struct {
	name      string
	build     func() (*event.Library, *dgraph.Graph, error)
	newEngine func(store.Store, *netstate.View) (*engine.Engine, error)
	display   func(string) string
}

func appSpecs() []appSpec {
	return []appSpec{
		{"bgpflap", bgpflap.Build, bgpflap.NewEngine, bgpflap.DisplayLabel},
		{"cdn", cdn.Build, cdn.NewEngine, cdn.DisplayLabel},
		{"pim", pim.Build, pim.NewEngine, pim.DisplayLabel},
		{"backbone", backbone.Build, backbone.NewEngine, backbone.DisplayLabel},
	}
}

// knownSources mirrors the collector's feed switch so an unknown source
// is rejected before it is journaled.
var knownSources = map[string]bool{
	collector.SourceOSPFMon: true, collector.SourceBGPMon: true,
	collector.SourceSyslog: true, collector.SourceSNMP: true,
	collector.SourceTACACS: true, collector.SourceWorkflow: true,
	collector.SourceLayer1: true, collector.SourcePerfMon: true,
	collector.SourceKeynote: true, collector.SourceServer: true,
}

func knownSource(s string) bool { return knownSources[s] }

// maxEventDuration bounds a single event's run time when deriving each
// application's streaming grace period; 15 minutes matches the
// collector's flap-aggregation window (and cmd/grca stats).
const maxEventDuration = 15 * time.Minute

// Config configures Open.
type Config struct {
	// DataDir holds the WAL, snapshots, and ingest journal — per shard,
	// under shard-<i>/ when Shards > 1.
	DataDir string
	// Bundle supplies the configuration archive and manifest (collection
	// window, CDN deployment). Its Feeds are ignored — feeds arrive over
	// HTTP.
	Bundle platform.Bundle
	// Shards is the number of independent store/WAL/journal lanes the
	// ingest path commits through (default 1). A data directory is bound
	// to its shard count at creation; reopening with a different count is
	// refused.
	Shards int
	// Fsync is the WAL durability policy (default batch). The ingest
	// journal always fsyncs per commit group; this tunes only the event
	// WAL.
	Fsync wal.FsyncPolicy
	// FsyncInterval is the WAL background sync period under interval
	// policy.
	FsyncInterval time.Duration
	// SnapshotEvery auto-snapshots a shard after that many WAL records.
	SnapshotEvery int
	// Retention, when positive, evicts events older than this behind each
	// shard's moving window; eviction triggers a snapshot so compaction
	// keeps disk bounded too.
	Retention time.Duration
	// MaxInflight bounds each shard's ingest queue (default 64 batches);
	// when an involved shard's queue is full, ingest answers 429.
	MaxInflight int
	// RequestTimeout bounds one request's wait for the commit pipeline
	// (default 60s).
	RequestTimeout time.Duration
	// LegacyParsers forces the collector's reference string parsers
	// instead of the zero-copy fast path (an escape hatch; the two are
	// parity-tested byte-identical).
	LegacyParsers bool
	// ReplayWorkers is the WAL's recovery decode parallelism (0 =
	// GOMAXPROCS).
	ReplayWorkers int
	// Debug mounts the expvar/pprof debug handlers under /debug/ on the
	// main API address — the single-port deployment; a dedicated metrics
	// listener (obs.ServeDebug) is the alternative.
	Debug bool
	// ReplicaOf, when set, opens this node as a live read replica of the
	// primary at that base URL (e.g. http://host:9090): it bootstraps
	// from the primary's replication streams, serves the read API
	// continuously, and redirects writes there. POST
	// /v1/replication/promote turns it into a primary.
	ReplicaOf string
	// ReplicaGrace is how long WAL compaction holds segments for a
	// recently disconnected follower (default 5m).
	ReplicaGrace time.Duration
	// ReplicaPoll is the replication streams' file-tail poll cadence
	// (default 50ms).
	ReplicaPoll time.Duration
}

func (c *Config) defaults() {
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 64
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
}

// task is one validated ingest request handed to the dispatcher.
type task struct {
	kind   byte
	source string
	lines  []byte
	events []event.Instance
	raw    []byte // journal body for recEvents/recEventsWire
}

type taskResult struct {
	status     int
	resp       IngestResponse
	err        error
	retryAfter int // seconds, set on 429
}

// shard is one lane of the parallel commit pipeline: a store shard, its
// WAL, its slice of the ingest journal, and the bounded queue its
// applier goroutine drains.
type shard struct {
	idx   int
	st    *store.Memory
	log   *wal.Log
	jour  *wal.Journal
	queue chan shardTask
	done  chan struct{}
}

// Server is an open diagnosis service.
type Server struct {
	cfg    Config
	topo   *netmodel.Topology
	shards []*shard
	st     *store.Sharded
	coll   *collector.Collector

	// dispatchMu serializes batch admission: sequence numbering, ID block
	// allocation, shard routing, and queue placement. Feeds and finalize
	// apply inline under it (they read and mutate collector state), so it
	// also serializes every collector write and every routing change.
	dispatchMu sync.Mutex
	seq        int
	routeCache map[locus.Location]int

	// The finisher joins shard completions back into sequence order:
	// batches enter finishQ at dispatch, and the finisher replies to each
	// after its shards commit, running the streaming processors over the
	// stored events in dispatch order so responses are byte-identical for
	// any shard count.
	finishQ     chan *batch
	finishDone  chan struct{}
	finishMu    sync.Mutex
	finishCond  *sync.Cond
	finishedSeq int

	// mu guards the serving-phase artifacts (finalized flag, view,
	// engines, processors): written at finalize, read by handlers and the
	// finisher.
	mu        sync.RWMutex
	finalized bool
	view      *netstate.View
	engines   map[string]*engine.Engine
	traced    map[string]*engine.Engine // tracing twins of engines
	procs     map[string]*realtime.Processor

	// roll holds the Result Browser's incremental aggregates; hub fans
	// streaming diagnoses out to SSE clients. Both exist from Open on.
	roll *rollup.Rollup
	hub  *sseHub

	// Replication (DESIGN.md §16). Primary side: bootID names this
	// incarnation, sealer feeds the stream merge's watermark, replReg
	// tracks followers (and pins compaction), replSrc serves the streams.
	// Follower side: follower is non-nil on a read replica, and promoted,
	// once set, is the post-failover primary every request delegates to.
	bootID   string
	sealer   *sealer
	replReg  *replica.Registry
	replSrc  *replica.Source
	follower *followerState
	promoted atomic.Pointer[promotedNode]

	closing  chan struct{}
	httpSrv  *http.Server
	recovery RecoveryInfo
}

// RecoveryInfo reports what Open reconstructed.
type RecoveryInfo struct {
	// Batches is how many journaled ingest batches were replayed.
	Batches int
	// Finalized reports whether the recovered service was already past
	// finalize.
	Finalized bool
	// Events is the recovered store's live event count.
	Events int
	// Shards is the shard count the data directory is bound to.
	Shards int
	// WALRebuilt is true when at least one shard's WAL disagreed with the
	// merged journal (crash between journal fsync and WAL commit, a lost
	// shard directory, or corruption) and was rebuilt from the journal
	// replay.
	WALRebuilt bool
}

func journalPath(dir string) string { return filepath.Join(dir, "journal.log") }

// shardDir returns shard i's state directory: the data dir itself for a
// single-shard deployment (the pre-sharding layout), shard-<i>/ under it
// otherwise.
func shardDir(dataDir string, n, i int) string {
	if n == 1 {
		return dataDir
	}
	return filepath.Join(dataDir, fmt.Sprintf("shard-%d", i))
}

// checkShardMarker binds the data directory to its shard count: the
// journals' sequence interleave and per-shard event placement are
// functions of N, so reopening with a different N would replay into the
// wrong shards. Pre-sharding directories (journal or WAL present, no
// marker) are adopted as single-shard only — stamping one with n>1
// would orphan its root-level state under the shard-<i>/ layout.
func checkShardMarker(dataDir string, n int) error {
	path := filepath.Join(dataDir, "SHARDS")
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		if n != 1 && legacyLayout(dataDir) {
			return fmt.Errorf("server: data dir %s holds a pre-sharding single-shard layout, opened with %d shards (resharding is not supported)",
				dataDir, n)
		}
		return os.WriteFile(path, []byte(strconv.Itoa(n)+"\n"), 0o644)
	}
	if err != nil {
		return err
	}
	have, err := strconv.Atoi(strings.TrimSpace(string(data)))
	if err != nil {
		return fmt.Errorf("server: unreadable shard marker %s: %v", path, err)
	}
	if have != n {
		return fmt.Errorf("server: data dir %s holds %d shards, opened with %d (resharding is not supported)",
			dataDir, have, n)
	}
	return nil
}

// legacyLayout reports whether dataDir carries pre-sharding state at its
// root: an ingest journal or a WAL segment directory.
func legacyLayout(dataDir string) bool {
	if _, err := os.Stat(journalPath(dataDir)); err == nil {
		return true
	}
	if _, err := os.Stat(filepath.Join(dataDir, "wal")); err == nil {
		return true
	}
	return false
}

// Open recovers (or initializes) the service under cfg.DataDir.
func Open(cfg Config) (*Server, error) {
	cfg.defaults()
	if cfg.ReplicaOf != "" {
		return openFollower(cfg)
	}
	n := cfg.Shards
	if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
		return nil, err
	}
	if err := checkShardMarker(cfg.DataDir, n); err != nil {
		return nil, err
	}
	topo, err := conf.Parse(cfg.Bundle.Configs, cfg.Bundle.Inventory)
	if err != nil {
		return nil, fmt.Errorf("server: config archive: %v", err)
	}
	walOpts := wal.Options{
		Fsync: cfg.Fsync, FsyncInterval: cfg.FsyncInterval,
		SnapshotEvery: cfg.SnapshotEvery, Retention: cfg.Retention,
		ReplayWorkers: cfg.ReplayWorkers,
	}

	// Recover every shard's WAL in parallel; a shard that fails here is
	// rebuilt from the journal replay below.
	type walState struct {
		log *wal.Log
		st  *store.Memory
		err error
	}
	ws := make([]walState, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			l, st, _, err := wal.Open(shardDir(cfg.DataDir, n, i), walOpts)
			ws[i] = walState{l, st, err}
		}(i)
	}
	wg.Wait()
	// Until the pipeline goroutines take ownership at the very end, every
	// open log and journal is ours: close them all on any error path so a
	// failed Open leaks neither file handles nor fsync goroutines.
	var shards []*shard
	opened := false
	defer func() {
		if opened {
			return
		}
		for i := range ws {
			if ws[i].log != nil {
				ws[i].log.Close() //nolint:errcheck // being discarded
			}
		}
		for _, sh := range shards {
			if sh != nil {
				sh.jour.Close() //nolint:errcheck // being discarded
			}
		}
	}()

	// Replay the merged ingest journals through a scratch pipeline to
	// rebuild collector state; its per-shard stores double as the
	// cross-check against the WAL-recovered shards.
	rep, err := replayJournals(cfg, topo)
	if err != nil {
		return nil, err
	}
	rebuilt := false
	for i := range ws {
		if ws[i].err == nil && wal.StoreDigest(ws[i].st) == wal.StoreDigest(rep.shards[i]) {
			continue
		}
		// This shard's WAL trails or disagrees with the journals: rebuild
		// it from the journal replay, which is the batch-level committed
		// prefix.
		if ws[i].log != nil {
			ws[i].log.Close() //nolint:errcheck // being discarded
			ws[i].log = nil
		}
		dir := shardDir(cfg.DataDir, n, i)
		for _, sub := range []string{"wal", "snap"} {
			if err := os.RemoveAll(filepath.Join(dir, sub)); err != nil {
				return nil, err
			}
		}
		l, st, _, err := wal.Open(dir, walOpts)
		if err != nil {
			return nil, err
		}
		ws[i] = walState{l, st, nil}
		base, next, ins := rep.shards[i].Dump()
		if err := st.Restore(base, next, ins); err != nil {
			return nil, fmt.Errorf("server: rebuilding shard %d from journal: %v", i, err)
		}
		if err := l.Snapshot(); err != nil {
			return nil, err
		}
		rebuilt = true
		mRebuilt.Inc()
	}
	mRecovered.Add(int64(rep.batches))

	mems := make([]*store.Memory, n)
	for i := range ws {
		mems[i] = ws[i].st
	}
	st := store.NewShardedOf(mems, store.HashRoute(n))
	st.SetNext(rep.scratch.NextID())

	// The scratch collector carries the journals' parse state; point it
	// at the authoritative store for all future ingest.
	coll := rep.coll
	coll.Store = st

	shards = make([]*shard, n)
	for i := range shards {
		jour, err := wal.OpenJournal(journalPath(shardDir(cfg.DataDir, n, i)))
		if err != nil {
			return nil, err
		}
		shards[i] = &shard{
			idx: i, st: mems[i], log: ws[i].log, jour: jour,
			queue: make(chan shardTask, cfg.MaxInflight),
			done:  make(chan struct{}),
		}
	}

	s := &Server{
		cfg: cfg, topo: topo, shards: shards, st: st, coll: coll,
		roll:        rollup.New(rollup.Config{}),
		hub:         newSSEHub(),
		seq:         rep.maxSeq + 1,
		routeCache:  map[locus.Location]int{},
		finishQ:     make(chan *batch, n*cfg.MaxInflight+n+1),
		finishDone:  make(chan struct{}),
		finishedSeq: rep.maxSeq,
		closing:     make(chan struct{}),
		recovery: RecoveryInfo{
			Batches: rep.batches, Finalized: rep.finalized,
			Events: st.Len(), Shards: n, WALRebuilt: rebuilt,
		},
	}
	s.finishCond = sync.NewCond(&s.finishMu)
	// The Result Browser rollups: seed the trend bins from the recovered
	// store (Restore bypasses the append hook), then track every future
	// append and eviction incrementally. Cause counters are seeded by
	// installServing once engines exist.
	s.roll.SeedEvents(st)
	st.OnAppend(s.roll.ObserveEvent)
	st.OnEvict(s.roll.EvictEvents)
	for i := range shards {
		l := shards[i].log
		mems[i].OnEvict(func([]*event.Instance, time.Time) {
			// Runs on that shard's applier goroutine (its only writer):
			// evicting the shard is the moment to snapshot, so segment
			// compaction keeps disk bounded the same way retention bounds
			// memory.
			l.Snapshot() //nolint:errcheck // sticky in the log
		})
	}
	if rep.finalized {
		if err := s.installServing(true); err != nil {
			return nil, err
		}
	}
	s.initReplicationSource(rep)
	opened = true
	for i := range shards {
		go s.applier(shards[i])
	}
	go s.finisher()
	return s, nil
}

// Recovery reports what Open reconstructed.
func (s *Server) Recovery() RecoveryInfo { return s.recovery }

// Store exposes the authoritative event store (tests, CLI wiring).
func (s *Server) Store() store.Store { return s.st }

// replayResult is what replayJournals rebuilt.
type replayResult struct {
	coll      *collector.Collector
	shards    []*store.Memory
	scratch   *store.Sharded
	finalized bool
	batches   int
	maxSeq    int
}

// latticeRoute builds the post-finalize location→shard routing function:
// conversion-lattice components co-shard, everything else spreads by
// hash of its own key.
func latticeRoute(view *netstate.View, n int) func(locus.Location) int {
	m := netstate.BuildShardMap(view)
	return func(loc locus.Location) int { return m.Shard(loc, n) }
}

// replayJournals rebuilds the pipeline state recorded across all shard
// journals into a fresh collector + sharded store: the records are
// merged in global sequence order, so dense ID allocation and shard
// placement replay exactly as the original dispatch produced them.
func replayJournals(cfg Config, topo *netmodel.Topology) (replayResult, error) {
	n := cfg.Shards
	rep := replayResult{maxSeq: -1, shards: make([]*store.Memory, n)}
	for i := range rep.shards {
		rep.shards[i] = store.New()
		if cfg.Retention > 0 {
			rep.shards[i].SetRetention(cfg.Retention)
		}
	}
	rep.scratch = store.NewShardedOf(rep.shards, store.HashRoute(n))
	c := collector.New(topo, rep.scratch, cfg.Bundle.Start.Year())
	c.LegacyParsers = cfg.LegacyParsers
	c.WindowStart = cfg.Bundle.Start
	c.WindowEnd = cfg.Bundle.Start.Add(cfg.Bundle.Duration)
	rep.coll = c

	type jrec struct {
		seq    int
		kind   byte
		source string
		body   []byte
	}
	var recs []jrec
	for i := 0; i < n; i++ {
		_, err := wal.ReplayJournal(journalPath(shardDir(cfg.DataDir, n, i)), func(p []byte) error {
			seq, kind, source, body, err := decodeJournalRecord(p)
			if err != nil {
				return err
			}
			recs = append(recs, jrec{seq, kind, source, body})
			return nil
		})
		if err != nil {
			return rep, fmt.Errorf("server: journal replay: %v", err)
		}
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].seq < recs[j].seq })

	for _, r := range recs {
		rep.batches++
		if r.seq > rep.maxSeq {
			rep.maxSeq = r.seq
		}
		switch r.kind {
		case recFeed:
			if err := c.Ingest(r.source, bytes.NewReader(r.body)); err != nil {
				// The original run journaled this batch before rejecting it
				// with the same deterministic parse error; state after the
				// partial ingest is identical either way.
				continue
			}
		case recFinalize:
			if err := c.Finalize(); err != nil {
				return rep, fmt.Errorf("server: journal replay: finalize: %v", err)
			}
			cdn.MaterializeEgressChanges(c, cfg.Bundle.CDN, c.WindowStart, c.WindowEnd)
			view := netstate.NewView(topo, c.OSPF, c.BGP)
			cdn.Register(view, cfg.Bundle.CDN)
			rep.scratch.SetRoute(latticeRoute(view, n))
			rep.finalized = true
		case recEvents:
			var evs []EventJSON
			if err := json.Unmarshal(r.body, &evs); err != nil {
				return rep, fmt.Errorf("server: journaled event batch: %v", err)
			}
			for _, ej := range evs {
				in, err := ej.instance()
				if err != nil {
					return rep, fmt.Errorf("server: journaled event batch: %v", err)
				}
				rep.scratch.Add(in)
			}
		case recEventsWire:
			b, err := wire.Decode(r.body)
			if err != nil {
				return rep, fmt.Errorf("server: journaled event batch: %v", err)
			}
			if b.Kind != wire.KindEvents {
				return rep, fmt.Errorf("server: journaled event batch: wire kind %d, want events", b.Kind)
			}
			for i := range b.Events {
				rep.scratch.Add(b.Events[i])
			}
		default:
			return rep, fmt.Errorf("server: unknown journal record kind %d", r.kind)
		}
	}
	return rep, nil
}

// installServing transitions to the serving phase: routing view, CDN
// registration, lattice-aware shard routing, per-application engines and
// streaming processors. With rebuildTails (recovery), each processor
// re-observes the tail of the stored stream so symptoms still inside
// their grace window at the crash stay pending instead of vanishing;
// their already-served diagnoses are discarded. Runs under dispatchMu
// (finalize) or before concurrency starts (Open).
func (s *Server) installServing(rebuildTails bool) error {
	view := netstate.NewView(s.topo, s.coll.OSPF, s.coll.BGP)
	cdn.Register(view, s.cfg.Bundle.CDN)
	// From here on, new events co-shard with everything their locations
	// convert to through the lattice. Events stored under the bootstrap
	// hash routing stay where they are — reads scatter-gather, so
	// placement is a locality property, never a correctness one.
	s.st.SetRoute(latticeRoute(view, len(s.shards)))
	s.routeCache = map[locus.Location]int{}
	engines := map[string]*engine.Engine{}
	traced := map[string]*engine.Engine{}
	procs := map[string]*realtime.Processor{}
	for _, a := range appSpecs() {
		eng, err := a.newEngine(s.st, view)
		if err != nil {
			return fmt.Errorf("server: %s engine: %v", a.name, err)
		}
		engines[a.name] = eng
		// A tracing twin rather than a per-request copy: Engine embeds an
		// atomic cache pointer and must not be copied.
		teng, err := a.newEngine(s.st, view)
		if err != nil {
			return fmt.Errorf("server: %s engine: %v", a.name, err)
		}
		teng.Tracing = true
		traced[a.name] = teng
		_, g, err := a.build()
		if err != nil {
			return fmt.Errorf("server: %s graph: %v", a.name, err)
		}
		p := realtime.NewOnStore(s.st, view, g, realtime.GraceFor(g, maxEventDuration))
		if rebuildTails {
			rebuildTail(s.st, p)
		}
		procs[a.name] = p
	}
	// Seed the breakdown rollups: one full-evidence diagnosis of every
	// stored root symptom per application, so the Result Browser's
	// invariant (breakdown ≡ batch browser.Breakdown over the live
	// store) holds from the first request — including right after a
	// crash recovery, where this re-derives the identical counters
	// deterministically. Symptoms still pending in a processor are
	// counted too; their eventual grace-elapsed drain re-counts them
	// with the (by then unchanged) full evidence.
	for _, a := range appSpecs() {
		for _, d := range engines[a.name].DiagnoseAllParallel(0) {
			s.roll.CountDiagnosis(a.name, d)
		}
	}
	// Fan live diagnoses out to the rollup counters, the recent ring,
	// and the SSE stream. Installed after the tail rebuild so its
	// replayed emissions (already served before the crash) don't reach
	// the ring.
	for _, a := range appSpecs() {
		name := a.name
		procs[name].OnDiagnosis = func(d engine.Diagnosis) {
			seq := s.roll.AddDiagnosis(name, d)
			if s.hub.active() {
				s.hub.publish(seq, streamFrame(rollup.Entry{Seq: seq, App: name, D: d}))
			}
		}
	}
	s.mu.Lock()
	s.finalized, s.view, s.engines, s.traced, s.procs = true, view, engines, traced, procs
	s.mu.Unlock()
	return nil
}

// rebuildTail replays the stored stream's tail (availability order)
// through a fresh processor: events past the span's end minus the grace
// window reconstruct the stream clock and the pending-symptom queue.
// Emitted diagnoses are dropped — anything whose grace elapsed before
// the crash was already served (streamed diagnoses are at-most-once; the
// authoritative answer is always /v1/diagnose).
func rebuildTail(st store.Store, p *realtime.Processor) {
	_, last, ok := st.Span()
	if !ok {
		return
	}
	cut := last.Add(-p.Grace - maxEventDuration)
	var tail []*event.Instance
	for _, name := range st.Names() {
		for _, in := range st.All(name) {
			if !in.End.Before(cut) {
				tail = append(tail, in)
			}
		}
	}
	sort.SliceStable(tail, func(i, j int) bool { return tail[i].End.Before(tail[j].End) })
	for _, in := range tail {
		p.ObserveStored(in)
	}
}

func errResult(status int, format string, args ...any) taskResult {
	return taskResult{status: status, err: fmt.Errorf(format, args...)}
}

func (s *Server) isFinalized() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.finalized
}

// queueTotals sums depth and capacity across all shard queues (len/cap
// on channels are safe concurrently).
func (s *Server) queueTotals() (depth, capacity int) {
	for _, sh := range s.shards {
		depth += len(sh.queue)
		capacity += cap(sh.queue)
	}
	return depth, capacity
}
