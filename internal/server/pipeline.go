// Package server turns the G-RCA pipeline into a durable, network-facing
// diagnosis service: the paper's platform ran as a shared system that
// applications fed continuously and queried on demand (§II), and this
// package is that shape — an HTTP/JSON API over a WAL-backed event store.
//
// # Durability model
//
// Two append-only structures under the data directory carry the state:
//
//   - The event WAL (internal/wal): every normalized instance added to
//     the store, with snapshots and compaction. It recovers the store
//     byte-identically and fast.
//   - The ingest journal (journal.log): every accepted ingest batch in
//     arrival order — raw feed lines or normalized-event JSON — plus the
//     finalize marker. The collector's parse state (routing simulations,
//     pairing buffers, rolling baselines) is a function of raw input, not
//     of normalized events, so restart recovery replays this journal
//     through a fresh collector to rebuild it.
//
// The journal append (fsynced) is the batch commit point; the WAL commit
// follows it. On startup both are reconciled: the journal is replayed
// into a scratch pipeline and the scratch store's digest must equal the
// WAL-recovered store's. A mismatch — a crash between journal fsync and
// WAL commit, or a corrupt WAL — rebuilds the WAL from the journal
// replay, so recovery always converges on the journal's longest
// committed prefix of batches.
//
// # Pipeline
//
// One applier goroutine owns all writes: HTTP handlers enqueue batches
// onto a bounded queue and wait for the result; when the queue is full
// the handler answers 429 with Retry-After instead of buffering — memory
// stays bounded under overload. Reads (diagnose, events, stats) bypass
// the queue; the store and view take their own read locks.
package server

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"grca/internal/apps/backbone"
	"grca/internal/apps/bgpflap"
	"grca/internal/apps/cdn"
	"grca/internal/apps/pim"
	"grca/internal/collector"
	"grca/internal/conf"
	"grca/internal/dgraph"
	"grca/internal/engine"
	"grca/internal/event"
	"grca/internal/netmodel"
	"grca/internal/netstate"
	"grca/internal/obs"
	"grca/internal/platform"
	"grca/internal/realtime"
	"grca/internal/rollup"
	"grca/internal/store"
	"grca/internal/wal"
	"grca/internal/wire"
)

var (
	mBatches    = obs.GetCounter("server.ingest.batches")
	mEvents     = obs.GetCounter("server.ingest.events")
	mRejected   = obs.GetCounter("server.http.429")
	mQueueDepth = obs.GetGauge("server.queue.depth")
	mRecovered  = obs.GetCounter("server.recovery.batches")
	mRebuilt    = obs.GetCounter("server.recovery.wal.rebuilt")
)

// Journal record kinds. A record is kind | uvarint len(source) | source |
// body: raw feed lines for recFeed, the JSON event array for recEvents,
// a wire.KindEvents batch (verbatim request bytes) for recEventsWire,
// empty for recFinalize.
const (
	recFeed       = 1
	recFinalize   = 2
	recEvents     = 3
	recEventsWire = 4
)

func encodeRecord(kind byte, source string, body []byte) []byte {
	out := make([]byte, 0, 1+10+len(source)+len(body))
	out = append(out, kind)
	out = binary.AppendUvarint(out, uint64(len(source)))
	out = append(out, source...)
	return append(out, body...)
}

func decodeRecord(p []byte) (kind byte, source string, body []byte, err error) {
	if len(p) < 1 {
		return 0, "", nil, fmt.Errorf("server: empty journal record")
	}
	kind, p = p[0], p[1:]
	n, sz := binary.Uvarint(p)
	if sz <= 0 || n > uint64(len(p)-sz) {
		return 0, "", nil, fmt.Errorf("server: truncated journal record source")
	}
	return kind, string(p[sz : sz+int(n)]), p[sz+int(n):], nil
}

// appSpec binds one packaged RCA application to the service. display
// maps raw engine labels to the application's paper-table row names —
// the Result Browser's breakdown vocabulary.
type appSpec struct {
	name      string
	build     func() (*event.Library, *dgraph.Graph, error)
	newEngine func(*store.Store, *netstate.View) (*engine.Engine, error)
	display   func(string) string
}

func appSpecs() []appSpec {
	return []appSpec{
		{"bgpflap", bgpflap.Build, bgpflap.NewEngine, bgpflap.DisplayLabel},
		{"cdn", cdn.Build, cdn.NewEngine, cdn.DisplayLabel},
		{"pim", pim.Build, pim.NewEngine, pim.DisplayLabel},
		{"backbone", backbone.Build, backbone.NewEngine, backbone.DisplayLabel},
	}
}

// knownSources mirrors the collector's feed switch so an unknown source
// is rejected before it is journaled.
var knownSources = map[string]bool{
	collector.SourceOSPFMon: true, collector.SourceBGPMon: true,
	collector.SourceSyslog: true, collector.SourceSNMP: true,
	collector.SourceTACACS: true, collector.SourceWorkflow: true,
	collector.SourceLayer1: true, collector.SourcePerfMon: true,
	collector.SourceKeynote: true, collector.SourceServer: true,
}

func knownSource(s string) bool { return knownSources[s] }

// maxEventDuration bounds a single event's run time when deriving each
// application's streaming grace period; 15 minutes matches the
// collector's flap-aggregation window (and cmd/grca stats).
const maxEventDuration = 15 * time.Minute

// Config configures Open.
type Config struct {
	// DataDir holds the WAL, snapshots, and ingest journal.
	DataDir string
	// Bundle supplies the configuration archive and manifest (collection
	// window, CDN deployment). Its Feeds are ignored — feeds arrive over
	// HTTP.
	Bundle platform.Bundle
	// Fsync is the WAL durability policy (default batch). The ingest
	// journal always fsyncs per batch; this tunes only the event WAL.
	Fsync wal.FsyncPolicy
	// FsyncInterval is the WAL background sync period under interval
	// policy.
	FsyncInterval time.Duration
	// SnapshotEvery auto-snapshots the store after that many WAL records.
	SnapshotEvery int
	// Retention, when positive, evicts events older than this behind the
	// store's moving window; eviction triggers a snapshot so compaction
	// keeps disk bounded too.
	Retention time.Duration
	// MaxInflight bounds the ingest queue (default 64 batches); beyond
	// it, ingest answers 429.
	MaxInflight int
	// RequestTimeout bounds one request's wait for the applier (default
	// 60s).
	RequestTimeout time.Duration
	// LegacyParsers forces the collector's reference string parsers
	// instead of the zero-copy fast path (an escape hatch; the two are
	// parity-tested byte-identical).
	LegacyParsers bool
	// ReplayWorkers is the WAL's recovery decode parallelism (0 =
	// GOMAXPROCS).
	ReplayWorkers int
	// Debug mounts the expvar/pprof debug handlers under /debug/ on the
	// main API address — the single-port deployment; a dedicated metrics
	// listener (obs.ServeDebug) is the alternative.
	Debug bool
}

func (c *Config) defaults() {
	if c.MaxInflight <= 0 {
		c.MaxInflight = 64
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
}

// task is one queued ingest batch.
type task struct {
	kind   byte
	source string
	lines  []byte
	events []event.Instance
	raw    []byte // journal body for recEvents
	reply  chan taskResult
}

type taskResult struct {
	status int
	resp   IngestResponse
	err    error
}

// Server is an open diagnosis service.
type Server struct {
	cfg  Config
	topo *netmodel.Topology
	log  *wal.Log
	st   *store.Store
	jour *wal.Journal
	coll *collector.Collector

	queue chan task
	done  chan struct{}

	// mu guards the serving-phase artifacts (finalized flag, view,
	// engines, processors): written by the applier, read by handlers.
	mu        sync.RWMutex
	finalized bool
	view      *netstate.View
	engines   map[string]*engine.Engine
	traced    map[string]*engine.Engine // tracing twins of engines
	procs     map[string]*realtime.Processor

	// roll holds the Result Browser's incremental aggregates; hub fans
	// streaming diagnoses out to SSE clients. Both exist from Open on.
	roll *rollup.Rollup
	hub  *sseHub

	closing  chan struct{}
	httpSrv  *http.Server
	recovery RecoveryInfo
}

// RecoveryInfo reports what Open reconstructed.
type RecoveryInfo struct {
	// Batches is how many journaled ingest batches were replayed.
	Batches int
	// Finalized reports whether the recovered service was already past
	// finalize.
	Finalized bool
	// Events is the recovered store's live event count.
	Events int
	// WALRebuilt is true when the WAL disagreed with the journal (crash
	// between journal fsync and WAL commit, or corruption) and was
	// rebuilt from the journal replay.
	WALRebuilt bool
}

func journalPath(dir string) string { return filepath.Join(dir, "journal.log") }

// Open recovers (or initializes) the service under cfg.DataDir.
func Open(cfg Config) (*Server, error) {
	cfg.defaults()
	if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
		return nil, err
	}
	topo, err := conf.Parse(cfg.Bundle.Configs, cfg.Bundle.Inventory)
	if err != nil {
		return nil, fmt.Errorf("server: config archive: %v", err)
	}
	walOpts := wal.Options{
		Fsync: cfg.Fsync, FsyncInterval: cfg.FsyncInterval,
		SnapshotEvery: cfg.SnapshotEvery, Retention: cfg.Retention,
		ReplayWorkers: cfg.ReplayWorkers,
	}
	l, st, _, walErr := wal.Open(cfg.DataDir, walOpts)

	// Replay the ingest journal through a scratch pipeline to rebuild
	// collector state; its store doubles as the cross-check against the
	// WAL-recovered store.
	scratch, finalized, batches, err := replayJournal(cfg, topo)
	if err != nil {
		return nil, err
	}
	rebuilt := false
	switch {
	case walErr != nil,
		l != nil && wal.StoreDigest(st) != wal.StoreDigest(scratch.Store):
		// The WAL trails or disagrees with the journal: rebuild it from
		// the journal replay, which is the batch-level committed prefix.
		if l != nil {
			l.Close() //nolint:errcheck // being discarded
		}
		for _, sub := range []string{"wal", "snap"} {
			if err := os.RemoveAll(filepath.Join(cfg.DataDir, sub)); err != nil {
				return nil, err
			}
		}
		l, st, _, err = wal.Open(cfg.DataDir, walOpts)
		if err != nil {
			return nil, err
		}
		base, next, ins := scratch.Store.Dump()
		if err := st.Restore(base, next, ins); err != nil {
			return nil, fmt.Errorf("server: rebuilding store from journal: %v", err)
		}
		if err := l.Snapshot(); err != nil {
			return nil, err
		}
		rebuilt = true
		mRebuilt.Inc()
	}
	mRecovered.Add(int64(batches))

	// The scratch collector carries the journal's parse state; point it
	// at the authoritative store for all future ingest.
	coll := scratch
	coll.Store = st

	jour, err := wal.OpenJournal(journalPath(cfg.DataDir))
	if err != nil {
		return nil, err
	}

	s := &Server{
		cfg: cfg, topo: topo, log: l, st: st, jour: jour, coll: coll,
		roll:    rollup.New(rollup.Config{}),
		hub:     newSSEHub(),
		queue:   make(chan task, cfg.MaxInflight),
		done:    make(chan struct{}),
		closing: make(chan struct{}),
		recovery: RecoveryInfo{
			Batches: batches, Finalized: finalized,
			Events: st.Len(), WALRebuilt: rebuilt,
		},
	}
	// The Result Browser rollups: seed the trend bins from the recovered
	// store (Restore bypasses the append hook), then track every future
	// append and eviction incrementally. Cause counters are seeded by
	// installServing once engines exist.
	s.roll.SeedEvents(st)
	st.OnAppend(s.roll.ObserveEvent)
	st.OnEvict(s.roll.EvictEvents)
	st.OnEvict(func([]*event.Instance, time.Time) {
		// Runs on the applier goroutine (the only writer): evicting the
		// store is the moment to snapshot, so segment compaction keeps
		// disk bounded the same way retention bounds memory.
		l.Snapshot() //nolint:errcheck // sticky in the log
	})
	if finalized {
		if err := s.installServing(true); err != nil {
			return nil, err
		}
	}
	go s.applier()
	return s, nil
}

// Recovery reports what Open reconstructed.
func (s *Server) Recovery() RecoveryInfo { return s.recovery }

// Store exposes the authoritative event store (tests, CLI wiring).
func (s *Server) Store() *store.Store { return s.st }

// replayJournal rebuilds the pipeline state recorded in the journal into
// a fresh collector + store.
func replayJournal(cfg Config, topo *netmodel.Topology) (c *collector.Collector, finalized bool, batches int, err error) {
	st := store.New()
	if cfg.Retention > 0 {
		st.SetRetention(cfg.Retention)
	}
	c = collector.New(topo, st, cfg.Bundle.Start.Year())
	c.LegacyParsers = cfg.LegacyParsers
	c.WindowStart = cfg.Bundle.Start
	c.WindowEnd = cfg.Bundle.Start.Add(cfg.Bundle.Duration)

	_, err = wal.ReplayJournal(journalPath(cfg.DataDir), func(p []byte) error {
		kind, source, body, err := decodeRecord(p)
		if err != nil {
			return err
		}
		batches++
		switch kind {
		case recFeed:
			return c.Ingest(source, bytes.NewReader(body))
		case recFinalize:
			if err := c.Finalize(); err != nil {
				return err
			}
			cdn.MaterializeEgressChanges(c, cfg.Bundle.CDN, c.WindowStart, c.WindowEnd)
			finalized = true
			return nil
		case recEvents:
			var evs []EventJSON
			if err := json.Unmarshal(body, &evs); err != nil {
				return fmt.Errorf("server: journaled event batch: %v", err)
			}
			for _, ej := range evs {
				in, err := ej.instance()
				if err != nil {
					return fmt.Errorf("server: journaled event batch: %v", err)
				}
				st.Add(in)
			}
			return nil
		case recEventsWire:
			b, err := wire.Decode(body)
			if err != nil {
				return fmt.Errorf("server: journaled event batch: %v", err)
			}
			if b.Kind != wire.KindEvents {
				return fmt.Errorf("server: journaled event batch: wire kind %d, want events", b.Kind)
			}
			for i := range b.Events {
				st.Add(b.Events[i])
			}
			return nil
		}
		return fmt.Errorf("server: unknown journal record kind %d", kind)
	})
	if err != nil {
		return nil, false, batches, fmt.Errorf("server: journal replay: %v", err)
	}
	return c, finalized, batches, nil
}

// installServing transitions to the serving phase: routing view, CDN
// registration, per-application engines and streaming processors. With
// rebuildTails (recovery), each processor re-observes the tail of the
// stored stream so symptoms still inside their grace window at the crash
// stay pending instead of vanishing; their already-served diagnoses are
// discarded.
func (s *Server) installServing(rebuildTails bool) error {
	view := netstate.NewView(s.topo, s.coll.OSPF, s.coll.BGP)
	cdn.Register(view, s.cfg.Bundle.CDN)
	engines := map[string]*engine.Engine{}
	traced := map[string]*engine.Engine{}
	procs := map[string]*realtime.Processor{}
	for _, a := range appSpecs() {
		eng, err := a.newEngine(s.st, view)
		if err != nil {
			return fmt.Errorf("server: %s engine: %v", a.name, err)
		}
		engines[a.name] = eng
		// A tracing twin rather than a per-request copy: Engine embeds an
		// atomic cache pointer and must not be copied.
		teng, err := a.newEngine(s.st, view)
		if err != nil {
			return fmt.Errorf("server: %s engine: %v", a.name, err)
		}
		teng.Tracing = true
		traced[a.name] = teng
		_, g, err := a.build()
		if err != nil {
			return fmt.Errorf("server: %s graph: %v", a.name, err)
		}
		p := realtime.NewOnStore(s.st, view, g, realtime.GraceFor(g, maxEventDuration))
		if rebuildTails {
			rebuildTail(s.st, p)
		}
		procs[a.name] = p
	}
	// Seed the breakdown rollups: one full-evidence diagnosis of every
	// stored root symptom per application, so the Result Browser's
	// invariant (breakdown ≡ batch browser.Breakdown over the live
	// store) holds from the first request — including right after a
	// crash recovery, where this re-derives the identical counters
	// deterministically. Symptoms still pending in a processor are
	// counted too; their eventual grace-elapsed drain re-counts them
	// with the (by then unchanged) full evidence.
	for _, a := range appSpecs() {
		for _, d := range engines[a.name].DiagnoseAllParallel(0) {
			s.roll.CountDiagnosis(a.name, d)
		}
	}
	// Fan live diagnoses out to the rollup counters, the recent ring,
	// and the SSE stream. Installed after the tail rebuild so its
	// replayed emissions (already served before the crash) don't reach
	// the ring.
	for _, a := range appSpecs() {
		name := a.name
		procs[name].OnDiagnosis = func(d engine.Diagnosis) {
			seq := s.roll.AddDiagnosis(name, d)
			if s.hub.active() {
				s.hub.publish(seq, streamFrame(rollup.Entry{Seq: seq, App: name, D: d}))
			}
		}
	}
	s.mu.Lock()
	s.finalized, s.view, s.engines, s.traced, s.procs = true, view, engines, traced, procs
	s.mu.Unlock()
	return nil
}

// rebuildTail replays the stored stream's tail (availability order)
// through a fresh processor: events past the span's end minus the grace
// window reconstruct the stream clock and the pending-symptom queue.
// Emitted diagnoses are dropped — anything whose grace elapsed before
// the crash was already served (streamed diagnoses are at-most-once; the
// authoritative answer is always /v1/diagnose).
func rebuildTail(st *store.Store, p *realtime.Processor) {
	_, last, ok := st.Span()
	if !ok {
		return
	}
	cut := last.Add(-p.Grace - maxEventDuration)
	var tail []*event.Instance
	for _, name := range st.Names() {
		for _, in := range st.All(name) {
			if !in.End.Before(cut) {
				tail = append(tail, in)
			}
		}
	}
	sort.SliceStable(tail, func(i, j int) bool { return tail[i].End.Before(tail[j].End) })
	for _, in := range tail {
		p.ObserveStored(in)
	}
}

// ---------------------------------------------------------------------
// Applier
// ---------------------------------------------------------------------

// applier is the single writer: it drains the queue into commit groups
// and replies to each batch. Draining coalesces the two fsyncs of a
// commit (journal, WAL) across every batch already waiting — group
// commit at the pipeline level, with the bounded queue itself as the
// wait window, so the fsync amortization grows exactly when load does.
// A finalize never shares a group: it flips what later batches are
// allowed to do, so it always commits alone.
func (s *Server) applier() {
	defer close(s.done)
	var carry *task
	for {
		var group []task
		if carry != nil {
			group, carry = []task{*carry}, nil
		} else {
			t, ok := <-s.queue
			if !ok {
				return
			}
			group = []task{t}
		}
		if group[0].kind != recFinalize {
		drain:
			for {
				select {
				case t, ok := <-s.queue:
					if !ok {
						break drain
					}
					if t.kind == recFinalize {
						carry = &t
						break drain
					}
					group = append(group, t)
				default:
					break drain
				}
			}
		}
		s.applyGroup(group)
	}
}

func errResult(status int, format string, args ...any) taskResult {
	return taskResult{status: status, err: fmt.Errorf(format, args...)}
}

// applyGroup commits one group of batches: stage every journal record,
// fsync the journal once (the group's commit point), apply each batch in
// arrival order, commit the WAL once, then reply to everyone. A batch
// rejected during validation is never journaled and never applied; a
// failed journal write poisons the rest of the group (bytes after a torn
// frame would not survive replay, so acknowledging them would lie).
func (s *Server) applyGroup(group []task) {
	mQueueDepth.Set(int64(len(s.queue)))
	results := make([]taskResult, len(group))
	staged := make([]bool, len(group))
	journaled := 0
	finalized := s.isFinalized() // stable: finalize is always alone in its group
	var jerr error
	for i, t := range group {
		if jerr != nil {
			results[i] = errResult(http.StatusInternalServerError, "journal: %v", jerr)
			continue
		}
		var rec []byte
		switch t.kind {
		case recFeed:
			if finalized {
				results[i] = errResult(http.StatusConflict, "feeds are closed: the system is finalized (use events)")
				continue
			}
			rec = encodeRecord(recFeed, t.source, t.lines)
		case recEvents, recEventsWire:
			rec = encodeRecord(t.kind, "", t.raw)
		case recFinalize:
			if finalized {
				results[i] = errResult(http.StatusConflict, "already finalized")
				continue
			}
			rec = encodeRecord(recFinalize, "", nil)
		}
		if err := s.jour.AppendNoSync(rec); err != nil {
			jerr = err
			results[i] = errResult(http.StatusInternalServerError, "journal: %v", err)
			continue
		}
		staged[i] = true
		journaled++
	}
	if journaled > 0 {
		if err := s.jour.Sync(); err != nil {
			for i := range group {
				if staged[i] {
					staged[i] = false
					results[i] = errResult(http.StatusInternalServerError, "journal: %v", err)
				}
			}
			journaled = 0
		}
	}
	for i := range group {
		if !staged[i] {
			continue
		}
		t := &group[i]
		switch t.kind {
		case recFeed:
			results[i] = s.applyFeed(t.source, t.lines)
		case recEvents, recEventsWire:
			results[i] = s.applyEvents(t.events)
		case recFinalize:
			results[i] = s.applyFinalize()
		}
	}
	if journaled > 0 {
		if err := s.log.Commit(); err != nil {
			for i := range group {
				if staged[i] && results[i].err == nil {
					results[i] = errResult(http.StatusInternalServerError, "wal: %v", err)
				}
			}
		}
	}
	for i, t := range group {
		mBatches.Inc()
		t.reply <- results[i]
	}
}

// applyFeed runs one journaled feed batch through the collector. An
// invalid batch is already journaled — replay hits the same
// deterministic error path, so state stays consistent.
func (s *Server) applyFeed(source string, lines []byte) taskResult {
	before := s.st.NextID()
	if err := s.coll.Ingest(source, bytes.NewReader(lines)); err != nil {
		return errResult(http.StatusBadRequest, "%v", err)
	}
	stored := s.st.NextID() - before
	mEvents.Add(int64(stored))
	return taskResult{status: http.StatusOK, resp: IngestResponse{Stored: stored}}
}

func (s *Server) applyEvents(events []event.Instance) taskResult {
	var resp IngestResponse
	s.mu.RLock()
	procs := s.procs
	s.mu.RUnlock()
	specs := appSpecs()
	for i := range events {
		stored := s.st.Add(events[i])
		resp.Stored++
		for _, a := range specs { // stable app order
			p, ok := procs[a.name]
			if !ok {
				continue
			}
			ds, late := p.ObserveStored(stored)
			if late {
				resp.Late++
			}
			for _, d := range ds {
				dj := diagnosisJSON(d)
				dj.App = a.name
				resp.Diagnoses = append(resp.Diagnoses, dj)
			}
		}
	}
	mEvents.Add(int64(resp.Stored))
	return taskResult{status: http.StatusOK, resp: resp}
}

func (s *Server) applyFinalize() taskResult {
	if err := s.coll.Finalize(); err != nil {
		return errResult(http.StatusInternalServerError, "finalize: %v", err)
	}
	cdn.MaterializeEgressChanges(s.coll, s.cfg.Bundle.CDN, s.coll.WindowStart, s.coll.WindowEnd)
	if err := s.installServing(false); err != nil {
		return errResult(http.StatusInternalServerError, "%v", err)
	}
	return taskResult{status: http.StatusOK}
}

func (s *Server) isFinalized() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.finalized
}
