package grcavet

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite testdata golden files")

// TestCorpus runs every deliberately broken spec in testdata/ through the
// vetter and compares the rendered findings against its .want golden. The
// corpus has one file per check ID, named after it, so the test also
// asserts that each file actually triggers its namesake check with full
// file:line provenance.
func TestCorpus(t *testing.T) {
	specs, err := filepath.Glob(filepath.Join("testdata", "*.grca"))
	if err != nil || len(specs) == 0 {
		t.Fatalf("no corpus specs found: %v", err)
	}
	ids := map[string]bool{}
	for _, id := range CheckIDs() {
		ids[id] = true
	}
	for _, path := range specs {
		name := strings.TrimSuffix(filepath.Base(path), ".grca")
		t.Run(name, func(t *testing.T) {
			if !ids[name] {
				t.Fatalf("corpus file %q is not named after a check ID", path)
			}
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			findings := CheckSource(filepath.Base(path), string(src), Options{})

			var hit bool
			for _, f := range findings {
				if f.File != filepath.Base(path) {
					t.Errorf("finding without file provenance: %+v", f)
				}
				if f.Line < 1 {
					t.Errorf("finding without line provenance: %+v", f)
				}
				if f.Check == name {
					hit = true
				}
			}
			if !hit {
				t.Errorf("spec %s did not trigger its namesake check; got %v", path, findings)
			}

			var b strings.Builder
			for _, f := range findings {
				b.WriteString(f.String())
				b.WriteString("\n")
			}
			golden := strings.TrimSuffix(path, ".grca") + ".want"
			if *update {
				if err := os.WriteFile(golden, []byte(b.String()), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if got := b.String(); got != string(want) {
				t.Errorf("findings mismatch for %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
			}
		})
	}
}

// TestCorpusCoversChecks asserts the corpus exercises a broad slice of the
// catalogue: at least 8 distinct statically-reachable check IDs, per the
// vet design contract.
func TestCorpusCoversChecks(t *testing.T) {
	specs, _ := filepath.Glob(filepath.Join("testdata", "*.grca"))
	covered := map[string]bool{}
	for _, path := range specs {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range CheckSource(filepath.Base(path), string(src), Options{}) {
			covered[f.Check] = true
		}
	}
	if len(covered) < 8 {
		t.Errorf("corpus covers only %d distinct check IDs: %v", len(covered), covered)
	}
}

// TestBuiltinsClean is the release gate: the shipped application specs and
// the Table II rule catalogue must produce no warnings or errors. (Info
// findings are tolerated — cdn deliberately defines the Table V
// throughput event its RTT graph does not reference.)
func TestBuiltinsClean(t *testing.T) {
	for _, f := range CheckBuiltins(Options{}) {
		if f.Severity >= Warning {
			t.Errorf("shipped spec is not vet-clean: %s", f)
		} else {
			t.Logf("info: %s", f)
		}
	}
}

// TestExamplesClean vets the standalone spec files shipped under
// examples/specs — the same files CI feeds to `grca vet`.
func TestExamplesClean(t *testing.T) {
	specs, err := filepath.Glob(filepath.Join("..", "..", "examples", "specs", "*.grca"))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) == 0 {
		t.Fatal("no example specs found under examples/specs")
	}
	for _, path := range specs {
		findings, err := CheckFile(path, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range findings {
			if f.Severity >= Warning {
				t.Errorf("example spec is not vet-clean: %s", f)
			}
		}
	}
}

// TestSeverityAggregates pins the helper semantics the CLI's exit code
// depends on.
func TestSeverityAggregates(t *testing.T) {
	fs := []Finding{
		{Check: CheckUnusedEvent, Severity: Info},
		{Check: CheckRootNoRules, Severity: Warning},
		{Check: CheckGraphCycle, Severity: Error},
		{Check: CheckUndefinedEvent, Severity: Error},
	}
	if got := ErrorCount(fs); got != 2 {
		t.Errorf("ErrorCount = %d, want 2", got)
	}
	if got := MaxSeverity(fs); got != Error {
		t.Errorf("MaxSeverity = %v, want error", got)
	}
	if got := MaxSeverity(nil); got != Info {
		t.Errorf("MaxSeverity(nil) = %v, want info", got)
	}
	if Info.String() != "info" || Warning.String() != "warning" || Error.String() != "error" {
		t.Errorf("severity names wrong: %v %v %v", Info, Warning, Error)
	}
}
