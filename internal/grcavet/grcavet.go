// Package grcavet statically validates G-RCA configuration artifacts —
// rulespec files, assembled diagnosis graphs, and the Knowledge Library —
// without running any diagnosis. The paper's Rule Builder (§II-C) assumes
// operators hand-edit event definitions and diagnosis rules; a typo there
// does not crash anything, it silently never correlates, which at
// production scale is indistinguishable from "the network is healthy".
// grcavet moves those failures from the diagnosis hot path to deploy time.
//
// Every finding carries a stable check ID, a severity, and file:line
// provenance threaded from the rulespec lexer. The check catalogue is
// documented in DESIGN.md §8; CheckIDs enumerates it programmatically.
package grcavet

import (
	"fmt"
	"os"
	"sort"
	"time"

	"grca/internal/dgraph"
	"grca/internal/event"
	"grca/internal/netstate"
	"grca/internal/rulespec"
	"grca/internal/temporal"
)

// Severity ranks findings. Error-level findings make `grca vet` exit
// non-zero; warnings indicate rules that will behave surprisingly but not
// incorrectly; info findings are hygiene notes.
type Severity uint8

const (
	Info Severity = iota
	Warning
	Error
)

func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	}
	return fmt.Sprintf("Severity(%d)", uint8(s))
}

// Check IDs. These are stable identifiers: CI pipelines and suppression
// lists key on them, so existing IDs must never be renamed.
const (
	CheckParseError       = "parse-error"                // spec does not parse
	CheckUndefinedEvent   = "undefined-event"            // rule/root references an event absent from the library
	CheckRedefineUnknown  = "redefine-unknown"           // redefine of an event absent from the base library
	CheckShadowsLibrary   = "event-shadows-library"      // event statement re-declares a base library event
	CheckDuplicateEvent   = "duplicate-event"            // event defined twice in one spec
	CheckUnknownUse       = "unknown-catalogue-rule"     // use pulls a pair the catalogue does not have
	CheckDuplicateEdge    = "duplicate-edge"             // two statements declare the same (symptom, diagnostic)
	CheckShadowedEdge     = "shadowed-edge"              // a rule statement silently overrides a use pull
	CheckGraphCycle       = "graph-cycle"                // diagnosis graph has a causal cycle
	CheckUnreachableRule  = "unreachable-rule"           // rule's symptom unreachable from the root
	CheckJoinSymptom      = "join-infeasible-symptom"    // symptom loctype cannot convert to the join level
	CheckJoinDiagnostic   = "join-infeasible-diagnostic" // diagnostic loctype cannot convert to the join level
	CheckEmptyWindow      = "empty-window"               // temporal margins yield an always/possibly empty window
	CheckRetention        = "window-exceeds-retention"   // margin reaches beyond the store's retention
	CheckSNMPMargin       = "snmp-margin"                // SNMP-sourced side with margins finer than its 5-minute bin
	CheckPriorityInverted = "priority-inversion"         // deeper cause with lower priority than its parent edge
	CheckNegativePriority = "negative-priority"          // rule priority below zero
	CheckUnusedEvent      = "unused-event"               // event defined but referenced by no rule
	CheckRootNoRules      = "root-no-rules"              // root symptom has no diagnosis rules
	CheckUncorrelated     = "rule-uncorrelated"          // correlation test failed (with -validate)
	CheckUntestable       = "rule-untestable"            // correlation test had no data (with -validate)
)

// CheckIDs lists every check the vetter can emit, in catalogue order.
func CheckIDs() []string {
	return []string{
		CheckParseError, CheckUndefinedEvent, CheckRedefineUnknown,
		CheckShadowsLibrary, CheckDuplicateEvent, CheckUnknownUse,
		CheckDuplicateEdge, CheckShadowedEdge, CheckGraphCycle,
		CheckUnreachableRule, CheckJoinSymptom, CheckJoinDiagnostic,
		CheckEmptyWindow, CheckRetention, CheckSNMPMargin,
		CheckPriorityInverted, CheckNegativePriority, CheckUnusedEvent,
		CheckRootNoRules, CheckUncorrelated, CheckUntestable,
	}
}

// Finding is one static-analysis result.
type Finding struct {
	Check    string   `json:"check"`
	Severity Severity `json:"-"`
	// Level is the severity's name, for JSON consumers.
	Level string `json:"level"`
	// File names the vetted artifact: a path for spec files, or a
	// "builtin:<app>" / "catalogue" pseudo-path for compiled-in sources.
	File string `json:"file"`
	// Line is the 1-based source line of the offending statement; 0 when
	// the artifact has no text form (the compiled-in catalogue).
	Line int `json:"line,omitempty"`
	// Subject names the offending rule (its Key) or event.
	Subject string `json:"subject,omitempty"`
	Message string `json:"message"`
}

func (f Finding) String() string {
	pos := f.File
	if f.Line > 0 {
		pos = fmt.Sprintf("%s:%d", f.File, f.Line)
	}
	return fmt.Sprintf("%s: %s [%s] %s", pos, f.Severity, f.Check, f.Message)
}

// Options configures a vet pass. The zero value selects the shipped
// Knowledge Library, catalogue, and default retention.
type Options struct {
	// Retention is the event store's look-back horizon: temporal margins
	// reaching past it can never be satisfied by stored data. Defaults to
	// DefaultRetention.
	Retention time.Duration
	// Base is the event library specs layer over; defaults to
	// event.Knowledge().
	Base *event.Library
	// Catalogue resolves use statements; defaults to dgraph.Knowledge().
	Catalogue *dgraph.Catalogue
}

// DefaultRetention mirrors a typical production deployment: one week of
// normalized events kept queryable (the paper's studies span months, but
// on rolled-up data).
const DefaultRetention = 7 * 24 * time.Hour

func (o Options) withDefaults() Options {
	if o.Retention <= 0 {
		o.Retention = DefaultRetention
	}
	if o.Base == nil {
		o.Base = event.Knowledge()
	}
	if o.Catalogue == nil {
		o.Catalogue = dgraph.Knowledge()
	}
	return o
}

// CheckFile vets one rulespec file on disk.
func CheckFile(path string, opts Options) ([]Finding, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return CheckSource(path, string(src), opts), nil
}

// CheckSource vets rulespec source text, attributing findings to file.
func CheckSource(file, src string, opts Options) []Finding {
	spec, err := rulespec.Parse(src)
	if err != nil {
		return []Finding{{
			Check:    CheckParseError,
			Severity: Error,
			File:     file,
			Line:     errorLine(err),
			Message:  err.Error(),
		}}
	}
	return CheckSpec(file, spec, opts)
}

// errorLine extracts the "line N" provenance a rulespec parse error
// carries (guaranteed by the parser's fuzz invariant).
func errorLine(err error) int {
	var n int
	msg := err.Error()
	for i := 0; i+5 < len(msg); i++ {
		if msg[i:i+5] == "line " {
			if _, e := fmt.Sscanf(msg[i:], "line %d", &n); e == nil {
				return n
			}
		}
	}
	return 0
}

// edge is one resolved diagnosis-graph edge with its provenance.
type edge struct {
	rule    dgraph.Rule
	line    int
	fromUse bool
}

// CheckSpec vets a parsed specification: event-layer consistency, edge
// resolution, graph shape, spatial-join feasibility, and temporal sanity.
// Findings come back sorted by line, then check ID.
func CheckSpec(file string, spec *rulespec.Spec, opts Options) []Finding {
	opts = opts.withDefaults()
	v := &vetter{file: file, opts: opts}

	// Layer the spec's event definitions over the base library, flagging
	// shadowing and duplicates instead of failing on the first.
	lib := opts.Base.Clone()
	seen := map[string]bool{}
	for _, d := range spec.Events {
		switch {
		case seen[d.Name]:
			v.addf(CheckDuplicateEvent, Error, d.Line, d.Name,
				"event %q defined more than once", d.Name)
		case has(opts.Base, d.Name):
			v.addf(CheckShadowsLibrary, Error, d.Line, d.Name,
				"event %q already exists in the Knowledge Library; use redefine to override it", d.Name)
		default:
			seen[d.Name] = true
			if err := lib.Define(d.Definition); err != nil {
				v.addf(CheckUndefinedEvent, Error, d.Line, d.Name, "%v", err)
			}
		}
	}
	for _, d := range spec.Redefines {
		if !has(lib, d.Name) {
			v.addf(CheckRedefineUnknown, Error, d.Line, d.Name,
				"redefine of unknown event %q", d.Name)
			continue
		}
		if err := lib.Redefine(d.Definition); err != nil {
			v.addf(CheckRedefineUnknown, Error, d.Line, d.Name, "%v", err)
		}
	}

	// Resolve use statements against the catalogue and rules as written
	// into one edge list, flagging duplicates and shadowing.
	var edges []edge
	byKey := map[string]edge{}
	for _, u := range spec.Uses {
		r, ok := opts.Catalogue.Find(u.Symptom, u.Diagnostic)
		if !ok {
			v.addf(CheckUnknownUse, Error, u.Line, u.Symptom+" <- "+u.Diagnostic,
				"catalogue has no rule %q <- %q", u.Symptom, u.Diagnostic)
			continue
		}
		r.Priority = u.Priority
		e := edge{rule: r, line: u.Line, fromUse: true}
		if prev, dup := byKey[r.Key()]; dup {
			v.addf(CheckDuplicateEdge, Error, u.Line, r.Key(),
				"edge %q already declared on line %d", r.Key(), prev.line)
			continue
		}
		byKey[r.Key()] = e
		edges = append(edges, e)
	}
	for _, r := range spec.Rules {
		e := edge{rule: r.Rule, line: r.Line}
		if prev, dup := byKey[r.Key()]; dup {
			if prev.fromUse {
				v.addf(CheckShadowedEdge, Warning, r.Line, r.Key(),
					"rule %q overrides the catalogue pull on line %d (drop the use, or the rule)", r.Key(), prev.line)
				// The rule wins, as Build documents.
				for i := range edges {
					if edges[i].rule.Key() == r.Key() {
						edges[i] = e
					}
				}
				byKey[r.Key()] = e
			} else {
				v.addf(CheckDuplicateEdge, Error, r.Line, r.Key(),
					"edge %q already declared on line %d", r.Key(), prev.line)
			}
			continue
		}
		byKey[r.Key()] = e
		edges = append(edges, e)
	}

	v.checkEvents(spec, lib, edges)
	v.checkEdges(lib, edges)
	v.checkGraph(spec, lib, edges)
	sort.SliceStable(v.findings, func(i, j int) bool {
		a, b := v.findings[i], v.findings[j]
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Subject < b.Subject
	})
	return v.findings
}

func has(l *event.Library, name string) bool {
	_, ok := l.Get(name)
	return ok
}

type vetter struct {
	file     string
	opts     Options
	findings []Finding
}

func (v *vetter) addf(check string, sev Severity, line int, subject, format string, args ...any) {
	v.findings = append(v.findings, Finding{
		Check:    check,
		Severity: sev,
		Level:    sev.String(),
		File:     v.file,
		Line:     line,
		Subject:  subject,
		Message:  fmt.Sprintf(format, args...),
	})
}

// checkEvents flags spec-defined events that no rule references (the
// classic "renamed the event, forgot the rule" drift) and verifies the
// root is defined.
func (v *vetter) checkEvents(spec *rulespec.Spec, lib *event.Library, edges []edge) {
	if !has(lib, spec.Root) {
		v.addf(CheckUndefinedEvent, Error, spec.Line, spec.Root,
			"root event %q is not defined", spec.Root)
	}
	used := map[string]bool{spec.Root: true}
	for _, e := range edges {
		used[e.rule.Symptom] = true
		used[e.rule.Diagnostic] = true
	}
	for _, d := range spec.Events {
		if !used[d.Name] {
			v.addf(CheckUnusedEvent, Info, d.Line, d.Name,
				"event %q is defined but no rule references it", d.Name)
		}
	}
}

// checkEdges runs the per-rule checks: endpoint definedness, spatial-join
// feasibility, and temporal sanity.
func (v *vetter) checkEdges(lib *event.Library, edges []edge) {
	for _, e := range edges {
		v.checkRule(lib, e.rule, e.line)
	}
}

// checkRule is the shared per-rule validation used for spec edges and
// catalogue entries alike.
func (v *vetter) checkRule(lib *event.Library, r dgraph.Rule, line int) {
	key := r.Key()
	symDef, symOK := lib.Get(r.Symptom)
	diagDef, diagOK := lib.Get(r.Diagnostic)
	if !symOK {
		v.addf(CheckUndefinedEvent, Error, line, key,
			"rule %q references undefined symptom event %q", key, r.Symptom)
	}
	if !diagOK {
		v.addf(CheckUndefinedEvent, Error, line, key,
			"rule %q references undefined diagnostic event %q", key, r.Diagnostic)
	}
	if symOK && !netstate.ConvertibleTo(symDef.LocType, r.JoinLevel) {
		v.addf(CheckJoinSymptom, Error, line, key,
			"rule %q joins at %s but symptom %q is located at %s, which never converts to %s: the rule can never join",
			key, r.JoinLevel, r.Symptom, symDef.LocType, r.JoinLevel)
	}
	if diagOK && !netstate.ConvertibleTo(diagDef.LocType, r.JoinLevel) {
		v.addf(CheckJoinDiagnostic, Error, line, key,
			"rule %q joins at %s but diagnostic %q is located at %s, which never converts to %s: the rule can never join",
			key, r.JoinLevel, r.Diagnostic, diagDef.LocType, r.JoinLevel)
	}
	if r.Priority < 0 {
		v.addf(CheckNegativePriority, Warning, line, key,
			"rule %q has negative priority %d; priorities order root causes and should be non-negative", key, r.Priority)
	}
	v.checkExpansion(r, line, "symptom", r.Temporal.Symptom, symDef, symOK)
	v.checkExpansion(r, line, "diagnostic", r.Temporal.Diagnostic, diagDef, diagOK)
}

// checkExpansion vets one side's three temporal parameters.
func (v *vetter) checkExpansion(r dgraph.Rule, line int, side string, x temporal.Expansion, def event.Definition, defined bool) {
	key := r.Key()
	// An expansion with Left+Right < 0 anchored at a single instant
	// (start/start, end/end) is empty for every instance; anchored at
	// start/end it is empty for any instance shorter than the deficit.
	if x.Left+x.Right < 0 {
		if x.Option == temporal.StartEnd {
			v.addf(CheckEmptyWindow, Warning, line, key,
				"rule %q %s window (%s) is empty for instances shorter than %s", key, side, x, -(x.Left + x.Right))
		} else {
			v.addf(CheckEmptyWindow, Error, line, key,
				"rule %q %s window (%s) is always empty: the rule can never join", key, side, x)
		}
	}
	ret := v.opts.Retention
	if x.Left > ret || x.Right > ret {
		v.addf(CheckRetention, Warning, line, key,
			"rule %q %s margin (%s) reaches beyond the store's %s retention", key, side, x, ret)
	}
	// SNMP feeds arrive in 5-minute bins: a condition reported in a bin
	// may have occurred anywhere inside it, so margins finer than the bin
	// express precision the data does not have and miss joins.
	if defined && def.Source == event.SourceSNMP && (x.Left < dgraph.SNMPBin || x.Right < dgraph.SNMPBin) {
		v.addf(CheckSNMPMargin, Warning, line, key,
			"rule %q %s event %q is SNMP-sourced (5-minute bins) but its margins (%s) are finer than the bin", key, side, def.Name, x)
	}
}

// checkGraph runs whole-graph checks: root fan-out, reachability from the
// root, cycles, and priority inversions along evidence chains.
func (v *vetter) checkGraph(spec *rulespec.Spec, lib *event.Library, edges []edge) {
	bySymptom := map[string][]edge{}
	for _, e := range edges {
		bySymptom[e.rule.Symptom] = append(bySymptom[e.rule.Symptom], e)
	}
	if len(edges) > 0 && len(bySymptom[spec.Root]) == 0 {
		v.addf(CheckRootNoRules, Warning, spec.Line, spec.Root,
			"root %q has no diagnosis rules: every symptom will be Unknown", spec.Root)
	}

	// Reachability from the root.
	reach := map[string]bool{spec.Root: true}
	queue := []string{spec.Root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range bySymptom[n] {
			if !reach[e.rule.Diagnostic] {
				reach[e.rule.Diagnostic] = true
				queue = append(queue, e.rule.Diagnostic)
			}
		}
	}
	for _, e := range edges {
		if !reach[e.rule.Symptom] {
			v.addf(CheckUnreachableRule, Error, e.line, e.rule.Key(),
				"rule %q is unreachable from root %q: it can never contribute evidence", e.rule.Key(), spec.Root)
		}
	}

	// Cycle detection (iterative DFS with colors), reporting each cycle
	// once at the edge that closes it.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var visit func(n string, path []string)
	visit = func(n string, path []string) {
		color[n] = gray
		path = append(path, n)
		for _, e := range bySymptom[n] {
			d := e.rule.Diagnostic
			switch color[d] {
			case gray:
				v.addf(CheckGraphCycle, Error, e.line, e.rule.Key(),
					"rule %q closes a causal cycle (%s): evidence-based reasoning cannot terminate", e.rule.Key(), cyclePath(path, d))
			case white:
				visit(d, path)
			}
		}
		color[n] = black
	}
	names := make([]string, 0, len(bySymptom))
	for n := range bySymptom {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if color[n] == white {
			visit(n, nil)
		}
	}

	// Priority inversion: dgraph's documented ordering is that deeper
	// causes carry higher priorities, so the max-priority leaf wins. A
	// child edge with a lower priority than its parent edge means the
	// deeper (more specific) cause loses to the shallower one.
	for _, parent := range edges {
		for _, child := range bySymptom[parent.rule.Diagnostic] {
			if child.rule.Priority < parent.rule.Priority {
				v.addf(CheckPriorityInverted, Warning, child.line, child.rule.Key(),
					"rule %q (priority %d) is deeper than %q (priority %d) but carries a lower priority: the deeper cause can never win",
					child.rule.Key(), child.rule.Priority, parent.rule.Key(), parent.rule.Priority)
			}
		}
	}
}

// cyclePath renders the cycle closed by reaching `to` along path.
func cyclePath(path []string, to string) string {
	start := 0
	for i, n := range path {
		if n == to {
			start = i
			break
		}
	}
	s := ""
	for _, n := range path[start:] {
		s += fmt.Sprintf("%q -> ", n)
	}
	return s + fmt.Sprintf("%q", to)
}

// CheckCatalogue vets the compiled-in Knowledge Library: every catalogue
// rule's endpoints must be defined events and its joins and windows sane.
// Findings are attributed to the pseudo-file "catalogue" with no lines.
func CheckCatalogue(opts Options) []Finding {
	opts = opts.withDefaults()
	v := &vetter{file: "catalogue", opts: opts}
	for _, r := range opts.Catalogue.All() {
		v.checkRule(opts.Base, r, 0)
	}
	sort.SliceStable(v.findings, func(i, j int) bool {
		a, b := v.findings[i], v.findings[j]
		if a.Subject != b.Subject {
			return a.Subject < b.Subject
		}
		return a.Check < b.Check
	})
	return v.findings
}

// ErrorCount returns the number of error-level findings.
func ErrorCount(fs []Finding) int {
	n := 0
	for _, f := range fs {
		if f.Severity == Error {
			n++
		}
	}
	return n
}

// MaxSeverity returns the highest severity present, or Info for an empty
// list.
func MaxSeverity(fs []Finding) Severity {
	max := Info
	for _, f := range fs {
		if f.Severity > max {
			max = f.Severity
		}
	}
	return max
}
