package grcavet

import (
	"grca/internal/apps/backbone"
	"grca/internal/apps/bgpflap"
	"grca/internal/apps/cdn"
	"grca/internal/apps/pim"
)

// Builtin is one compiled-in application specification.
type Builtin struct {
	Name string
	Src  string
}

// Builtins lists the applications shipped with the platform, in the order
// the grca CLI exposes them.
func Builtins() []Builtin {
	return []Builtin{
		{"bgpflap", bgpflap.Spec},
		{"cdn", cdn.Spec},
		{"cdnrtt", cdn.ThroughputSpec},
		{"pim", pim.Spec},
		{"backbone", backbone.Spec},
	}
}

// CheckBuiltins vets every compiled-in application spec plus the shipped
// rule catalogue — the pre-release gate run by `grca vet` with no
// arguments and by CI. Findings are attributed to "builtin:<name>" and
// "catalogue" pseudo-files.
func CheckBuiltins(opts Options) []Finding {
	var all []Finding
	for _, b := range Builtins() {
		all = append(all, CheckSource("builtin:"+b.Name, b.Src, opts)...)
	}
	all = append(all, CheckCatalogue(opts)...)
	return all
}
