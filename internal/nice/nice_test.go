package nice

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"grca/internal/event"
	"grca/internal/locus"
)

var t0 = time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)

func TestSeriesSetAndClip(t *testing.T) {
	s := NewSeries(t0, time.Minute, 10)
	s.Set(t0.Add(2*time.Minute), t0.Add(4*time.Minute))
	if s.Ones() != 3 || !s.At(2) || !s.At(4) || s.At(5) {
		t.Errorf("Set produced wrong bins: ones=%d", s.Ones())
	}
	// Clipping at both ends.
	s2 := NewSeries(t0, time.Minute, 10)
	s2.Set(t0.Add(-5*time.Minute), t0.Add(time.Minute))
	if !s2.At(0) || !s2.At(1) || s2.Ones() != 2 {
		t.Error("left clip wrong")
	}
	s2.Set(t0.Add(8*time.Minute), t0.Add(30*time.Minute))
	if !s2.At(9) || s2.Ones() != 4 {
		t.Error("right clip wrong")
	}
	// Entirely outside.
	s3 := NewSeries(t0, time.Minute, 10)
	s3.Set(t0.Add(-10*time.Minute), t0.Add(-5*time.Minute))
	s3.Set(t0.Add(50*time.Minute), t0.Add(60*time.Minute))
	s3.Set(t0.Add(5*time.Minute), t0.Add(4*time.Minute)) // inverted
	if s3.Ones() != 0 {
		t.Error("out-of-range Set leaked bins")
	}
	s3.Mark(t0.Add(7 * time.Minute))
	if !s3.At(7) || s3.Ones() != 1 {
		t.Error("Mark wrong")
	}
}

func TestSmooth(t *testing.T) {
	s := NewSeries(t0, time.Minute, 10)
	s.Mark(t0)
	s.Mark(t0.Add(5 * time.Minute))
	sm := s.Smooth(1)
	if sm.Ones() != 5 { // bins 0,1 and 4,5,6
		t.Errorf("smooth ones = %d, want 5", sm.Ones())
	}
	if s.Ones() != 2 {
		t.Error("Smooth mutated receiver")
	}
}

func TestFromInstances(t *testing.T) {
	ins := []*event.Instance{
		{Name: "e", Start: t0, End: t0.Add(time.Minute), Loc: locus.At(locus.Router, "r")},
		{Name: "e", Start: t0.Add(30 * time.Minute), End: t0.Add(30 * time.Minute)},
	}
	s := FromInstances(ins, t0, time.Minute, 60)
	if !s.At(0) || !s.At(1) || !s.At(30) || s.Ones() != 3 {
		t.Errorf("FromInstances ones = %d", s.Ones())
	}
}

func TestPearsonPerfectAndInverse(t *testing.T) {
	a := NewSeries(t0, time.Minute, 100)
	b := NewSeries(t0, time.Minute, 100)
	for i := 0; i < 100; i += 2 {
		a.Mark(t0.Add(time.Duration(i) * time.Minute))
		b.Mark(t0.Add(time.Duration(i) * time.Minute))
	}
	r, err := Pearson(a, b)
	if err != nil || math.Abs(r-1) > 1e-9 {
		t.Errorf("identical series r = %v, %v", r, err)
	}
	c := NewSeries(t0, time.Minute, 100)
	for i := 1; i < 100; i += 2 {
		c.Mark(t0.Add(time.Duration(i) * time.Minute))
	}
	r, err = Pearson(a, c)
	if err != nil || math.Abs(r+1) > 1e-9 {
		t.Errorf("complementary series r = %v, %v", r, err)
	}
}

func TestPearsonErrors(t *testing.T) {
	a := NewSeries(t0, time.Minute, 10)
	b := NewSeries(t0, time.Minute, 12)
	if _, err := Pearson(a, b); err == nil {
		t.Error("length mismatch accepted")
	}
	c := NewSeries(t0, time.Minute, 10) // all zero: zero variance
	d := NewSeries(t0, time.Minute, 10)
	d.Mark(t0)
	if _, err := Pearson(c, d); err == nil {
		t.Error("zero-variance series accepted")
	}
	if _, err := Pearson(NewSeries(t0, time.Minute, 0), NewSeries(t0, time.Minute, 0)); err == nil {
		t.Error("empty series accepted")
	}
}

// TestCorrelatedSeriesSignificant: a diagnostic series that precedes the
// symptom series by one bin (causal lag within the smoothing radius) must
// test significant.
func TestCorrelatedSeriesSignificant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 2000
	sym := NewSeries(t0, time.Minute, n)
	diag := NewSeries(t0, time.Minute, n)
	for i := 0; i < 60; i++ {
		bin := rng.Intn(n - 2)
		diag.Mark(t0.Add(time.Duration(bin) * time.Minute))
		sym.Mark(t0.Add(time.Duration(bin+1) * time.Minute))
	}
	res, err := Tester{}.Test(sym.Smooth(1), diag.Smooth(1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Significant {
		t.Errorf("causal pair not significant: %+v", res)
	}
	if res.Score < DefaultThreshold {
		t.Errorf("score = %v", res.Score)
	}
}

// TestIndependentSeriesNotSignificant: two independent random series must
// (almost always, and deterministically under the fixed seed) fail the
// test.
func TestIndependentSeriesNotSignificant(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 2000
	a := NewSeries(t0, time.Minute, n)
	b := NewSeries(t0, time.Minute, n)
	for i := 0; i < 80; i++ {
		a.Mark(t0.Add(time.Duration(rng.Intn(n)) * time.Minute))
		b.Mark(t0.Add(time.Duration(rng.Intn(n)) * time.Minute))
	}
	res, err := Tester{}.Test(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Significant {
		t.Errorf("independent pair significant: %+v", res)
	}
}

// TestAutocorrelatedBurstsHandled is NICE's raison d'être: two independent
// but *bursty* series co-occur by chance more than a naive independence
// assumption predicts, yet the circular permutation test — which preserves
// burst structure under shifts — must still reject them.
func TestAutocorrelatedBurstsHandled(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 4000
	mkBursty := func() *Series {
		s := NewSeries(t0, time.Minute, n)
		for b := 0; b < 12; b++ {
			at := rng.Intn(n - 60)
			for i := 0; i < 30; i++ { // 30-minute bursts
				s.Mark(t0.Add(time.Duration(at+i) * time.Minute))
			}
		}
		return s
	}
	sig := 0
	for trial := 0; trial < 10; trial++ {
		a, b := mkBursty(), mkBursty()
		res, err := Tester{Rand: rand.New(rand.NewSource(int64(trial)))}.Test(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if res.Significant {
			sig++
		}
	}
	if sig > 1 {
		t.Errorf("bursty independent series flagged significant in %d/10 trials", sig)
	}
}

func TestTesterErrors(t *testing.T) {
	a := NewSeries(t0, time.Minute, 3)
	if _, err := (Tester{}).Test(a, a); err == nil {
		t.Error("too-short series accepted")
	}
	b := NewSeries(t0, time.Minute, 100)
	c := NewSeries(t0, time.Minute, 99)
	if _, err := (Tester{}).Test(b, c); err == nil {
		t.Error("length mismatch accepted")
	}
	d := NewSeries(t0, time.Minute, 100) // zero variance
	e := NewSeries(t0, time.Minute, 100)
	e.Mark(t0)
	if _, err := (Tester{}).Test(d, e); err == nil {
		t.Error("zero-variance series accepted")
	}
}

func TestShiftsCapped(t *testing.T) {
	a := NewSeries(t0, time.Minute, 10)
	b := NewSeries(t0, time.Minute, 10)
	for i := 0; i < 10; i += 2 {
		a.Mark(t0.Add(time.Duration(i) * time.Minute))
		b.Mark(t0.Add(time.Duration(i) * time.Minute))
	}
	res, err := Tester{Shifts: 10000}.Test(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shifts > 9 {
		t.Errorf("shifts = %d, want ≤ n−1", res.Shifts)
	}
}
