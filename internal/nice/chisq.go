package nice

import (
	"fmt"
	"math"
)

// ChiSquared is the canonical independence test the paper contrasts NICE
// against (§V cites CORDS' chi-squared analysis): it treats the bins of
// two binary series as independent draws and tests the 2×2 contingency
// table. On network event series — which are bursty, i.e. strongly
// autocorrelated — the independence assumption undercounts the variance
// of chance co-occurrence and over-declares significance; the circular
// permutation test exists precisely to fix that. BenchmarkAblationTester
// quantifies the difference.
type ChiSquared struct {
	// Threshold is the χ² statistic above which (with positive
	// association) the pair is declared significant. The default 10.83
	// corresponds to p ≈ 0.001 at one degree of freedom.
	Threshold float64
}

// DefaultChiSquaredThreshold is the 1-dof critical value at p ≈ 0.001.
const DefaultChiSquaredThreshold = 10.83

// Test computes the chi-squared statistic of the 2×2 contingency table of
// the two series. The result reuses Result: Corr carries the phi
// coefficient (the Pearson correlation of binary variables), Score the χ²
// statistic.
func (c ChiSquared) Test(a, b *Series) (Result, error) {
	if a.Len() != b.Len() {
		return Result{}, fmt.Errorf("nice: series length mismatch (%d vs %d)", a.Len(), b.Len())
	}
	n := a.Len()
	if n < 4 {
		return Result{}, fmt.Errorf("nice: series too short (%d bins)", n)
	}
	var n11, n10, n01, n00 float64
	for i := 0; i < n; i++ {
		switch {
		case a.At(i) && b.At(i):
			n11++
		case a.At(i):
			n10++
		case b.At(i):
			n01++
		default:
			n00++
		}
	}
	rowA, rowNotA := n11+n10, n01+n00
	colB, colNotB := n11+n01, n10+n00
	if rowA == 0 || rowNotA == 0 || colB == 0 || colNotB == 0 {
		return Result{}, fmt.Errorf("nice: zero-variance series")
	}
	total := float64(n)
	chi2 := total * (n11*n00 - n10*n01) * (n11*n00 - n10*n01) /
		(rowA * rowNotA * colB * colNotB)
	phi := (n11*n00 - n10*n01) / math.Sqrt(rowA*rowNotA*colB*colNotB)

	threshold := c.Threshold
	if threshold == 0 {
		threshold = DefaultChiSquaredThreshold
	}
	return Result{
		Corr:        phi,
		Score:       chi2,
		Significant: chi2 > threshold && phi > 0,
	}, nil
}
