// Package nice implements the statistical correlation tester G-RCA uses to
// validate and discover diagnosis rules (paper §II-E), following the NICE
// approach of Mahimkar et al. (CoNEXT 2008): two event series are reduced
// to binary time series, their Pearson correlation is computed, and
// significance is assessed with a *circular permutation* test — one series
// is circularly shifted and the correlation recomputed, building a null
// distribution that preserves each series' autocorrelation structure
// (which canonical independence tests mishandle for bursty network event
// series).
//
// The correlation is declared significant when the unshifted score exceeds
// the null mean by more than Threshold standard deviations.
package nice

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"grca/internal/event"
)

// DefaultThreshold is the significance threshold in null-distribution
// standard deviations.
const DefaultThreshold = 3.0

// Series is a binned binary event time series.
type Series struct {
	Start time.Time
	Bin   time.Duration
	bits  []bool
}

// NewSeries creates an all-zero series of n bins.
func NewSeries(start time.Time, bin time.Duration, n int) *Series {
	return &Series{Start: start, Bin: bin, bits: make([]bool, n)}
}

// Len returns the number of bins.
func (s *Series) Len() int { return len(s.bits) }

// Ones returns the number of set bins.
func (s *Series) Ones() int {
	n := 0
	for _, b := range s.bits {
		if b {
			n++
		}
	}
	return n
}

// Set marks the bins covering [from, to]. Out-of-range portions are
// clipped.
func (s *Series) Set(from, to time.Time) {
	if to.Before(from) || len(s.bits) == 0 {
		return
	}
	lo := int(from.Sub(s.Start) / s.Bin)
	hi := int(to.Sub(s.Start) / s.Bin)
	if hi < 0 || lo >= len(s.bits) {
		return
	}
	if lo < 0 {
		lo = 0
	}
	if hi >= len(s.bits) {
		hi = len(s.bits) - 1
	}
	for i := lo; i <= hi; i++ {
		s.bits[i] = true
	}
}

// Mark sets the single bin containing t.
func (s *Series) Mark(t time.Time) { s.Set(t, t) }

// At reports whether bin i is set.
func (s *Series) At(i int) bool { return s.bits[i] }

// Smooth returns a copy with every set bin dilated by radius bins on each
// side, NICE's tolerance for timing fuzz between related series.
func (s *Series) Smooth(radius int) *Series {
	out := NewSeries(s.Start, s.Bin, len(s.bits))
	for i, b := range s.bits {
		if !b {
			continue
		}
		lo, hi := i-radius, i+radius
		if lo < 0 {
			lo = 0
		}
		if hi >= len(s.bits) {
			hi = len(s.bits) - 1
		}
		for j := lo; j <= hi; j++ {
			out.bits[j] = true
		}
	}
	return out
}

// FromInstances bins event instances into a fresh series.
func FromInstances(ins []*event.Instance, start time.Time, bin time.Duration, n int) *Series {
	s := NewSeries(start, bin, n)
	for _, in := range ins {
		s.Set(in.Start, in.End)
	}
	return s
}

// Pearson computes the correlation coefficient of two equal-length binary
// series. It returns an error when either series has zero variance
// (empty or saturated), where correlation is undefined.
func Pearson(a, b *Series) (float64, error) {
	if a.Len() != b.Len() {
		return 0, fmt.Errorf("nice: series length mismatch (%d vs %d)", a.Len(), b.Len())
	}
	return pearsonShifted(a.bits, b.bits, 0)
}

// pearsonShifted computes Pearson correlation of a against b circularly
// shifted by k bins. For binary series the formula reduces to counting
// joint ones.
func pearsonShifted(a, b []bool, k int) (float64, error) {
	n := len(a)
	if n == 0 {
		return 0, fmt.Errorf("nice: empty series")
	}
	na, nb, nab := 0, 0, 0
	for i := 0; i < n; i++ {
		j := i + k
		if j >= n {
			j -= n
		}
		x, y := a[i], b[j]
		if x {
			na++
		}
		if y {
			nb++
		}
		if x && y {
			nab++
		}
	}
	fa, fb := float64(na)/float64(n), float64(nb)/float64(n)
	va, vb := fa*(1-fa), fb*(1-fb)
	if va == 0 || vb == 0 {
		return 0, fmt.Errorf("nice: zero-variance series (ones: %d and %d of %d)", na, nb, n)
	}
	cov := float64(nab)/float64(n) - fa*fb
	return cov / math.Sqrt(va*vb), nil
}

// Result reports one correlation test.
type Result struct {
	// Corr is the unshifted Pearson correlation.
	Corr float64
	// NullMean and NullStd characterize the circular-shift null
	// distribution.
	NullMean float64
	NullStd  float64
	// Score is (Corr − NullMean) / NullStd.
	Score float64
	// Significant is Score > threshold.
	Significant bool
	// Shifts is the number of circular permutations evaluated.
	Shifts int
}

// Tester configures circular permutation testing.
type Tester struct {
	// Shifts is the number of circular offsets sampled for the null
	// distribution (default 200).
	Shifts int
	// Threshold is the significance score threshold (default
	// DefaultThreshold).
	Threshold float64
	// Rand drives offset sampling; a nil Rand uses a fixed seed so tests
	// and experiments are reproducible.
	Rand *rand.Rand
}

// Test runs the circular permutation test of series b against a.
func (t Tester) Test(a, b *Series) (Result, error) {
	shifts := t.Shifts
	if shifts <= 0 {
		shifts = 200
	}
	threshold := t.Threshold
	if threshold == 0 {
		threshold = DefaultThreshold
	}
	rng := t.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	if a.Len() != b.Len() {
		return Result{}, fmt.Errorf("nice: series length mismatch (%d vs %d)", a.Len(), b.Len())
	}
	n := a.Len()
	if n < 4 {
		return Result{}, fmt.Errorf("nice: series too short (%d bins)", n)
	}
	corr, err := pearsonShifted(a.bits, b.bits, 0)
	if err != nil {
		return Result{}, err
	}
	if shifts > n-1 {
		shifts = n - 1
	}
	// Sample distinct non-zero circular offsets. Beyond half the bins the
	// shifted overlap wraps symmetrically, but distinct offsets still give
	// distinct alignments, so sample across the full range.
	var sum, sumsq float64
	for i := 0; i < shifts; i++ {
		k := 1 + rng.Intn(n-1)
		r, err := pearsonShifted(a.bits, b.bits, k)
		if err != nil {
			return Result{}, err
		}
		sum += r
		sumsq += r * r
	}
	mean := sum / float64(shifts)
	variance := sumsq/float64(shifts) - mean*mean
	if variance < 0 {
		variance = 0
	}
	std := math.Sqrt(variance)
	res := Result{Corr: corr, NullMean: mean, NullStd: std, Shifts: shifts}
	if std == 0 {
		// A degenerate null (e.g. a constant-correlation pair): fall back
		// to requiring a materially positive raw correlation.
		res.Score = math.Inf(1)
		res.Significant = corr > mean+1e-9
		return res, nil
	}
	res.Score = (corr - mean) / std
	res.Significant = res.Score > threshold
	return res, nil
}
