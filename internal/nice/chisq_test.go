package nice

import (
	"math/rand"
	"testing"
	"time"
)

func TestChiSquaredBasics(t *testing.T) {
	a := NewSeries(t0, time.Minute, 100)
	b := NewSeries(t0, time.Minute, 100)
	for i := 0; i < 100; i += 2 {
		a.Mark(t0.Add(time.Duration(i) * time.Minute))
		b.Mark(t0.Add(time.Duration(i) * time.Minute))
	}
	res, err := ChiSquared{}.Test(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Significant || res.Corr < 0.99 {
		t.Errorf("identical series: %+v", res)
	}
	// Negative association is correlation but not a causal candidate.
	c := NewSeries(t0, time.Minute, 100)
	for i := 1; i < 100; i += 2 {
		c.Mark(t0.Add(time.Duration(i) * time.Minute))
	}
	res, err = ChiSquared{}.Test(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Significant || res.Corr > -0.99 {
		t.Errorf("complementary series: %+v", res)
	}
}

func TestChiSquaredErrors(t *testing.T) {
	a := NewSeries(t0, time.Minute, 10)
	b := NewSeries(t0, time.Minute, 12)
	if _, err := (ChiSquared{}).Test(a, b); err == nil {
		t.Error("length mismatch accepted")
	}
	c := NewSeries(t0, time.Minute, 10)
	d := NewSeries(t0, time.Minute, 10)
	d.Mark(t0)
	if _, err := (ChiSquared{}).Test(c, d); err == nil {
		t.Error("zero-variance accepted")
	}
	if _, err := (ChiSquared{}).Test(NewSeries(t0, time.Minute, 2), NewSeries(t0, time.Minute, 2)); err == nil {
		t.Error("too-short accepted")
	}
}

// TestChiSquaredOverfiresOnBursts demonstrates the paper's point: on
// independent *bursty* series the independence-assuming chi-squared test
// declares spurious significance far more often than the circular
// permutation test, because burst overlap produces large co-occurrence
// counts the i.i.d. null cannot explain.
func TestChiSquaredOverfiresOnBursts(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	n := 4000
	mkBursty := func() *Series {
		s := NewSeries(t0, time.Minute, n)
		for b := 0; b < 12; b++ {
			at := rng.Intn(n - 60)
			for i := 0; i < 30; i++ {
				s.Mark(t0.Add(time.Duration(at+i) * time.Minute))
			}
		}
		return s
	}
	chiFP, niceFP := 0, 0
	trials := 30
	for trial := 0; trial < trials; trial++ {
		a, b := mkBursty(), mkBursty()
		cres, err := ChiSquared{}.Test(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if cres.Significant {
			chiFP++
		}
		nres, err := Tester{Rand: rand.New(rand.NewSource(int64(trial)))}.Test(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if nres.Significant {
			niceFP++
		}
	}
	// Measured on this generator: chi-squared fires on ~43% of
	// independent bursty pairs, NICE on ~13% (and 0% at a 4σ threshold).
	if chiFP < 2*niceFP {
		t.Errorf("chi-squared false positives (%d/%d) not clearly worse than NICE (%d/%d): the paper's motivation should reproduce",
			chiFP, trials, niceFP, trials)
	}
	if niceFP > trials/5 {
		t.Errorf("NICE false positives too high: %d/%d", niceFP, trials)
	}
}
