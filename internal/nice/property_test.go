package nice

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// TestPearsonSymmetry: correlation is symmetric in its arguments, and the
// circular-shift correlation at offset k of (a, b) equals the correlation
// at offset n−k of (b, a).
func TestPearsonSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 64 + rng.Intn(64)
		a := NewSeries(t0, time.Minute, n)
		b := NewSeries(t0, time.Minute, n)
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				a.Mark(t0.Add(time.Duration(i) * time.Minute))
			}
			if rng.Intn(3) == 0 {
				b.Mark(t0.Add(time.Duration(i) * time.Minute))
			}
		}
		rab, errAB := Pearson(a, b)
		rba, errBA := Pearson(b, a)
		if (errAB == nil) != (errBA == nil) {
			return false
		}
		if errAB != nil {
			return true // degenerate both ways: fine
		}
		return math.Abs(rab-rba) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestPearsonBounds: the coefficient always lies in [-1, 1].
func TestPearsonBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 16 + rng.Intn(100)
		a := NewSeries(t0, time.Minute, n)
		b := NewSeries(t0, time.Minute, n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				a.Mark(t0.Add(time.Duration(i) * time.Minute))
			}
			if rng.Intn(4) == 0 {
				b.Mark(t0.Add(time.Duration(i) * time.Minute))
			}
		}
		r, err := Pearson(a, b)
		if err != nil {
			return true
		}
		return r >= -1-1e-12 && r <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
