package wire

import (
	"bytes"
	"encoding/hex"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"grca/internal/event"
	"grca/internal/locus"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata wire vectors")

// goldenEvents is a fixed batch covering every field shape: attrs /
// no attrs, single- and pair-element loci, instantaneous and interval
// times, sub-second precision.
func goldenEvents() []event.Instance {
	t0 := time.Date(2010, 1, 2, 3, 4, 5, 0, time.UTC)
	return []event.Instance{
		{
			Name: "eBGP flap", Start: t0, End: t0.Add(time.Minute),
			Loc: locus.Between(locus.RouterNeighbor, "pop00-per1", "10.99.0.1"),
			Attrs: map[string]string{
				"neighbor": "10.99.0.1",
				"msg":      "BGP-5-ADJCHANGE: neighbor 10.99.0.1 Down",
			},
		},
		{
			Name: event.InterfaceUp, Start: t0.Add(time.Second + 250*time.Millisecond),
			End: t0.Add(time.Second + 250*time.Millisecond),
			Loc: locus.At(locus.Interface, "load-r7"),
		},
		{
			Name: "CPU high", Start: t0.Add(2 * time.Hour), End: t0.Add(3 * time.Hour),
			Loc:   locus.At(locus.Router, "pop01-agg2"),
			Attrs: map[string]string{"pct": "97"},
		},
	}
}

// TestGoldenVectors pins the byte-level encoding: a format change that
// alters these bytes breaks replay of journaled wire batches and must be
// a new version, not a silent edit.
func TestGoldenVectors(t *testing.T) {
	cases := []struct {
		name string
		enc  []byte
	}{
		{"events_batch.bin", AppendEvents(nil, goldenEvents())},
		{"feed_batch.bin", AppendFeed(nil, "syslog", "Jan  2 03:04:05 pop00-per1 %SYS-5-RESTART: reload\n")},
	}
	for _, tc := range cases {
		path := filepath.Join("testdata", tc.name)
		if *updateGolden {
			if err := os.WriteFile(path, tc.enc, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run with -update-golden to create)", tc.name, err)
		}
		if !bytes.Equal(tc.enc, want) {
			t.Errorf("%s: encoding drifted from golden vector\n got %s\nwant %s",
				tc.name, hex.EncodeToString(tc.enc), hex.EncodeToString(want))
		}
		b, err := Decode(want)
		if err != nil {
			t.Fatalf("%s: decode golden: %v", tc.name, err)
		}
		switch tc.name {
		case "events_batch.bin":
			if !reflect.DeepEqual(b.Events, goldenEvents()) {
				t.Errorf("%s: golden decode mismatch: %+v", tc.name, b.Events)
			}
		case "feed_batch.bin":
			if b.Source != "syslog" || b.Lines == "" {
				t.Errorf("%s: golden feed decode mismatch: %+v", tc.name, b)
			}
		}
	}
}

// TestRoundTripProperty encodes and decodes randomized batches and
// requires exact equality — the encoder and decoder must be inverses on
// every valid instance.
func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	randStr := func(n int) string {
		const alpha = "abcdefghijklmnopqrstuvwxyz0123456789-.:| %\"\\\x00\xff"
		b := make([]byte, rng.Intn(n))
		for i := range b {
			b[i] = alpha[rng.Intn(len(alpha))]
		}
		return string(b)
	}
	for iter := 0; iter < 200; iter++ {
		ins := make([]event.Instance, rng.Intn(8)+1)
		for i := range ins {
			start := time.Unix(rng.Int63n(4e9)-1e9, rng.Int63n(1e9)).UTC()
			ins[i] = event.Instance{
				Name:  "ev-" + randStr(12) + "x",
				Start: start,
				End:   start.Add(time.Duration(rng.Int63n(int64(48 * time.Hour)))),
				Loc: locus.Location{
					Type: locus.Type(rng.Intn(int(locus.ServerClient)) + 1),
					A:    randStr(16), B: randStr(16),
				},
			}
			for j := rng.Intn(4); j > 0; j-- {
				if ins[i].Attrs == nil {
					ins[i].Attrs = map[string]string{}
				}
				ins[i].Attrs["k"+randStr(6)] = randStr(20)
			}
		}
		enc := AppendEvents(nil, ins)
		got, err := Decode(enc)
		if err != nil {
			t.Fatalf("iter %d: decode: %v", iter, err)
		}
		if got.Kind != KindEvents || !reflect.DeepEqual(got.Events, ins) {
			t.Fatalf("iter %d: round trip mismatch\n got %+v\nwant %+v", iter, got.Events, ins)
		}

		src, lines := randStr(10), randStr(200)
		fb, err := Decode(AppendFeed(nil, src, lines))
		if err != nil {
			t.Fatalf("iter %d: feed decode: %v", iter, err)
		}
		if fb.Kind != KindFeed || fb.Source != src || fb.Lines != lines {
			t.Fatalf("iter %d: feed round trip mismatch", iter)
		}
	}
}

// TestDecodeValidation asserts the wire decoder rejects invalid events
// with the exact error strings of the JSON path.
func TestDecodeValidation(t *testing.T) {
	t0 := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	cases := []struct {
		in   event.Instance
		want string
	}{
		{event.Instance{Name: "  ", Start: t0, End: t0,
			Loc: locus.At(locus.Router, "r1")}, `event name is required`},
		{event.Instance{Name: "x", End: t0,
			Loc: locus.At(locus.Router, "r1")}, `event "x": start and end are required`},
		{event.Instance{Name: "x", Start: t0, End: t0.Add(-time.Second),
			Loc: locus.At(locus.Router, "r1")}, `event "x": end precedes start`},
		{event.Instance{Name: "x", Start: t0, End: t0,
			Loc: locus.Location{Type: locus.Type(200), A: "r1"}},
			`event "x": locus: unknown location type "locus.type(200)"`},
	}
	for _, tc := range cases {
		_, err := Decode(AppendEvents(nil, []event.Instance{tc.in}))
		if err == nil || err.Error() != tc.want {
			t.Errorf("decode(%+v): err %v, want %q", tc.in, err, tc.want)
		}
	}
}

// TestDecodeTruncated walks every prefix of a valid batch through Decode:
// all must fail cleanly (never panic, never accept a torn batch).
func TestDecodeTruncated(t *testing.T) {
	enc := AppendEvents(nil, goldenEvents())
	for n := 0; n < len(enc); n++ {
		if _, err := Decode(enc[:n]); err == nil {
			t.Fatalf("Decode accepted %d-byte prefix of %d-byte batch", n, len(enc))
		}
	}
	if _, err := Decode(append(enc[:len(enc):len(enc)], 0xff)); err == nil {
		t.Fatal("Decode accepted batch with trailing garbage")
	}
}

func BenchmarkDecodeEvents(b *testing.B) {
	ins := make([]event.Instance, 1000)
	t0 := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := range ins {
		at := t0.Add(time.Duration(i) * time.Millisecond)
		ins[i] = event.Instance{
			Name: event.InterfaceUp, Start: at, End: at,
			Loc: locus.At(locus.Interface, "load-r7"),
		}
	}
	enc := AppendEvents(nil, ins)
	b.SetBytes(int64(len(enc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}
