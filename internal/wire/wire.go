// Package wire implements the compact binary batch format of the
// fast-path ingest pipeline. A wire batch carries exactly what one JSON
// POST /v1/ingest body carries — either a raw feed chunk (source +
// lines) or a slice of normalized event instances — but skips the JSON
// codec entirely: strings are uvarint-length-prefixed, times are
// (seconds, nanos) varints, and every event record is length-prefixed so
// a decoder can bound its reads before touching field bytes.
//
// Layout (all integers little-endian or varint as noted):
//
//	batch     = magic "GRCW" | version (1 byte, =1) | kind (1 byte) | payload
//	kind      = 1 (events) | 2 (feed)
//	events    = uvarint count | count × record
//	record    = uvarint len | len bytes of event
//	event     = name string | varint startSec | uvarint startNanos
//	          | varint endSec | uvarint endNanos
//	          | locus type name string | A string | B string
//	          | uvarint nattrs | nattrs × (key string, value string)
//	feed      = source string | lines string
//	string    = uvarint byte length | bytes
//
// Locus types travel as their canonical names (the same contract as the
// JSON API), never as numeric codes, so the format does not depend on
// enum ordering. Attribute keys are written in sorted order so encoding
// is deterministic; decoders accept any order.
//
// Decode validates events with the same rules — and the same error
// strings — as the JSON path's EventJSON.instance, so a malformed batch
// is rejected identically no matter which encoding carried it. Decode
// never panics and never reads past the declared bounds of the buffer;
// FuzzDecode enforces both.
package wire

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"time"

	"grca/internal/event"
	"grca/internal/locus"
)

// ContentType is the media type negotiated on POST /v1/ingest for wire
// batches (JSON remains the default).
const ContentType = "application/x-grca-wire"

// Batch kinds.
const (
	KindEvents = 1
	KindFeed   = 2
)

const (
	version    = 1
	headerSize = 6 // magic + version + kind

	// maxEvents bounds the declared batch size so a corrupt count cannot
	// drive a huge allocation before any record bytes are read.
	maxEvents = 1 << 20
	// maxRecord bounds one encoded event record.
	maxRecord = 1 << 20
)

var magic = [4]byte{'G', 'R', 'C', 'W'}

// A Batch is one decoded wire body: either Events (KindEvents) or
// Source+Lines (KindFeed).
type Batch struct {
	Kind   int
	Events []event.Instance
	Source string
	Lines  string
}

// AppendEvents appends a KindEvents batch for ins to b and returns the
// extended slice. IDs are not encoded — the store assigns them.
func AppendEvents(b []byte, ins []event.Instance) []byte {
	b = appendHeader(b, KindEvents)
	b = binary.AppendUvarint(b, uint64(len(ins)))
	var rec []byte
	for i := range ins {
		rec = appendEvent(rec[:0], &ins[i])
		b = binary.AppendUvarint(b, uint64(len(rec)))
		b = append(b, rec...)
	}
	return b
}

// AppendFeed appends a KindFeed batch to b and returns the extended
// slice.
func AppendFeed(b []byte, source, lines string) []byte {
	b = appendHeader(b, KindFeed)
	b = appendString(b, source)
	return appendString(b, lines)
}

func appendHeader(b []byte, kind byte) []byte {
	b = append(b, magic[:]...)
	return append(b, version, kind)
}

func appendEvent(b []byte, in *event.Instance) []byte {
	b = appendString(b, in.Name)
	b = binary.AppendVarint(b, in.Start.Unix())
	b = binary.AppendUvarint(b, uint64(in.Start.Nanosecond()))
	b = binary.AppendVarint(b, in.End.Unix())
	b = binary.AppendUvarint(b, uint64(in.End.Nanosecond()))
	b = appendString(b, in.Loc.Type.String())
	b = appendString(b, in.Loc.A)
	b = appendString(b, in.Loc.B)
	b = binary.AppendUvarint(b, uint64(len(in.Attrs)))
	if len(in.Attrs) > 0 {
		keys := make([]string, 0, len(in.Attrs))
		for k := range in.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			b = appendString(b, k)
			b = appendString(b, in.Attrs[k])
		}
	}
	return b
}

// IsWire reports whether p starts with the wire magic — the cheap
// body-sniff the server uses alongside the Content-Type header.
func IsWire(p []byte) bool {
	return len(p) >= 4 && p[0] == magic[0] && p[1] == magic[1] && p[2] == magic[2] && p[3] == magic[3]
}

// Decode parses one wire batch. Event validation applies the same rules,
// with the same error text, as the JSON ingest path: a batch with any
// invalid event is rejected whole.
func Decode(p []byte) (Batch, error) {
	var out Batch
	if len(p) < headerSize {
		return out, fmt.Errorf("wire: short header (%d bytes)", len(p))
	}
	if !IsWire(p) {
		return out, fmt.Errorf("wire: bad magic")
	}
	if p[4] != version {
		return out, fmt.Errorf("wire: unsupported version %d", p[4])
	}
	kind := p[5]
	p = p[headerSize:]
	switch kind {
	case KindEvents:
		out.Kind = KindEvents
		n, sz := binary.Uvarint(p)
		if sz <= 0 || n > maxEvents {
			return out, fmt.Errorf("wire: bad event count")
		}
		p = p[sz:]
		out.Events = make([]event.Instance, 0, min(int(n), 4096))
		tab := make(interner, 64)
		for i := uint64(0); i < n; i++ {
			recLen, sz := binary.Uvarint(p)
			if sz <= 0 || recLen > maxRecord || recLen > uint64(len(p)-sz) {
				return out, fmt.Errorf("wire: truncated record %d/%d", i, n)
			}
			rec := p[sz : sz+int(recLen)]
			p = p[sz+int(recLen):]
			in, err := decodeEvent(rec, tab)
			if err != nil {
				return out, err
			}
			out.Events = append(out.Events, in)
		}
		if len(p) != 0 {
			return out, fmt.Errorf("wire: %d trailing bytes after batch", len(p))
		}
		return out, nil
	case KindFeed:
		out.Kind = KindFeed
		var err error
		if out.Source, p, err = readString(p); err != nil {
			return out, fmt.Errorf("wire: feed source: %v", err)
		}
		if out.Lines, p, err = readString(p); err != nil {
			return out, fmt.Errorf("wire: feed lines: %v", err)
		}
		if len(p) != 0 {
			return out, fmt.Errorf("wire: %d trailing bytes after batch", len(p))
		}
		return out, nil
	default:
		return out, fmt.Errorf("wire: unknown batch kind %d", kind)
	}
}

// interner deduplicates strings within one Decode call. Event names,
// locus elements, and attribute keys repeat heavily inside a batch, so
// sharing one allocation per distinct value keeps a 1000-event batch
// from allocating thousands of identical short strings. The map lookup
// on a []byte key is allocation-free (the compiler elides the
// conversion); only the first occurrence pays for the copy.
type interner map[string]string

func (tab interner) intern(b []byte) string {
	if s, ok := tab[string(b)]; ok {
		return s
	}
	s := string(b)
	tab[s] = s
	return s
}

func readInterned(b []byte, tab interner) (string, []byte, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 || n > uint64(len(b)-sz) {
		return "", b, fmt.Errorf("truncated string")
	}
	return tab.intern(b[sz : sz+int(n)]), b[sz+int(n):], nil
}

// decodeEvent parses one event record and validates it exactly as the
// JSON path's EventJSON.instance does — same checks, same error strings.
func decodeEvent(p []byte, tab interner) (event.Instance, error) {
	var in event.Instance
	name, p, err := readInterned(p, tab)
	if err != nil {
		return in, fmt.Errorf("wire: event name: %v", err)
	}
	start, p, err := readTime(p)
	if err != nil {
		return in, fmt.Errorf("wire: event %q start: %v", name, err)
	}
	end, p, err := readTime(p)
	if err != nil {
		return in, fmt.Errorf("wire: event %q end: %v", name, err)
	}
	typeName, p, err := readInterned(p, tab)
	if err != nil {
		return in, fmt.Errorf("wire: event %q locus type: %v", name, err)
	}
	a, p, err := readInterned(p, tab)
	if err != nil {
		return in, fmt.Errorf("wire: event %q locus: %v", name, err)
	}
	b, p, err := readInterned(p, tab)
	if err != nil {
		return in, fmt.Errorf("wire: event %q locus: %v", name, err)
	}
	nattrs, sz := binary.Uvarint(p)
	if sz <= 0 || nattrs > uint64(len(p)) {
		return in, fmt.Errorf("wire: event %q: truncated attribute count", name)
	}
	p = p[sz:]
	var attrs map[string]string
	if nattrs > 0 {
		attrs = make(map[string]string, nattrs)
		for i := uint64(0); i < nattrs; i++ {
			var k, v string
			if k, p, err = readInterned(p, tab); err != nil {
				return in, fmt.Errorf("wire: event %q attr key: %v", name, err)
			}
			if v, p, err = readString(p); err != nil {
				return in, fmt.Errorf("wire: event %q attr value: %v", name, err)
			}
			attrs[k] = v
		}
	}
	if len(p) != 0 {
		return in, fmt.Errorf("wire: event %q: %d trailing bytes", name, len(p))
	}

	// Validation — must mirror EventJSON.instance byte-for-byte so a bad
	// event is rejected with the same message on both encodings.
	if strings.TrimSpace(name) == "" {
		return in, fmt.Errorf("event name is required")
	}
	if start.IsZero() || end.IsZero() {
		return in, fmt.Errorf("event %q: start and end are required", name)
	}
	if end.Before(start) {
		return in, fmt.Errorf("event %q: end precedes start", name)
	}
	t, err := locus.ParseType(typeName)
	if err != nil {
		return in, fmt.Errorf("event %q: %v", name, err)
	}
	return event.Instance{
		Name: name, Start: start.UTC(), End: end.UTC(),
		Loc: locus.Location{Type: t, A: a, B: b}, Attrs: attrs,
	}, nil
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func readString(b []byte) (string, []byte, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 || n > uint64(len(b)-sz) {
		return "", b, fmt.Errorf("truncated string")
	}
	return string(b[sz : sz+int(n)]), b[sz+int(n):], nil
}

// readTime decodes a (varint seconds, uvarint nanos) pair. Nanos ≥ 1e9
// are rejected rather than normalized so every instant has exactly one
// encoding.
func readTime(b []byte) (time.Time, []byte, error) {
	sec, sz := binary.Varint(b)
	if sz <= 0 {
		return time.Time{}, b, fmt.Errorf("truncated seconds")
	}
	b = b[sz:]
	nsec, sz := binary.Uvarint(b)
	if sz <= 0 || nsec >= 1e9 {
		return time.Time{}, b, fmt.Errorf("bad nanoseconds")
	}
	return time.Unix(sec, int64(nsec)).UTC(), b[sz:], nil
}
