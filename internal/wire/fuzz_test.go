package wire

import (
	"testing"
	"time"

	"grca/internal/event"
	"grca/internal/locus"
)

// FuzzDecode feeds arbitrary bytes to Decode, which must never panic and
// never over-read: whatever it returns on success must re-encode and
// re-decode to the same value (a decoded batch is always a valid one).
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("GRCW"))
	f.Add([]byte{'G', 'R', 'C', 'W', 1, 1, 0x80})
	f.Add(AppendEvents(nil, goldenEvents()))
	f.Add(AppendFeed(nil, "syslog", "Jan  2 03:04:05 r1 %SYS-5-RESTART: x\n"))
	// A count far larger than the payload: must fail without allocating
	// for the declared size.
	f.Add([]byte{'G', 'R', 'C', 'W', 1, 1, 0xff, 0xff, 0x3f})
	long := event.Instance{
		Name:  "long",
		Start: time.Unix(0, 1).UTC(), End: time.Unix(1<<40, 999999999).UTC(),
		Loc:   locus.Between(locus.SourceDestination, "a", "b"),
		Attrs: map[string]string{"k": string(make([]byte, 300))},
	}
	f.Add(AppendEvents(nil, []event.Instance{long, long}))

	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := Decode(data)
		if err != nil {
			return
		}
		// Successful decodes must round-trip: re-encode and compare the
		// decoded forms (the byte encodings may differ only if the input
		// used unsorted attrs, so compare semantically).
		var enc []byte
		switch b.Kind {
		case KindEvents:
			enc = AppendEvents(nil, b.Events)
		case KindFeed:
			enc = AppendFeed(nil, b.Source, b.Lines)
		default:
			t.Fatalf("Decode returned unknown kind %d without error", b.Kind)
		}
		b2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-decode of re-encoded batch failed: %v", err)
		}
		if b2.Kind != b.Kind || len(b2.Events) != len(b.Events) ||
			b2.Source != b.Source || b2.Lines != b.Lines {
			t.Fatalf("re-decode mismatch: %+v vs %+v", b, b2)
		}
	})
}
