package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Shipping support for the replication subsystem (internal/replica): the
// stream's wire format is the on-disk format, so the source tails
// segment and journal files directly and followers write what they
// receive. This file exports just enough of the framing and the dir
// layout to do that, plus the compaction pin that keeps a segment on
// disk while a registered follower still needs it.

// FrameHeader is the byte length of a record frame's header.
const FrameHeader = frameHeader

// MaxRecord bounds a single framed record; a streamed length beyond it
// is treated as corruption, exactly as recovery treats it on disk.
const MaxRecord = maxRecord

// AppendFrame appends payload to b under the standard record framing.
func AppendFrame(b, payload []byte) []byte { return appendFrame(b, payload) }

// ReadFrame decodes one frame at the front of b; ok is false when b
// holds no complete, intact frame (the torn-tail signal).
func ReadFrame(b []byte) (payload, rest []byte, ok bool) { return readFrame(b) }

// RecordID returns the store ID carried by an encoded segment record.
func RecordID(p []byte) (int, error) { return recordID(p) }

// FrameReader incrementally decodes record frames from a byte stream —
// the streaming counterpart of ReadFrame for consumers that cannot hold
// the whole log in memory (the replication client). Next returns io.EOF
// at a clean frame boundary and ErrTornFrame when the stream ends or
// corrupts mid-frame.
type FrameReader struct {
	br      *bufio.Reader
	hdr     [frameHeader]byte
	payload []byte
}

// ErrTornFrame reports a stream that ended or corrupted inside a frame:
// a short header, an absurd length, a truncated payload, or a CRC
// mismatch.
var ErrTornFrame = fmt.Errorf("wal: torn or corrupt frame")

// NewFrameReader wraps r for incremental frame decoding.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{br: bufio.NewReaderSize(r, 1<<16)}
}

// Next returns the next frame's payload. The returned slice is reused
// by the following call — copy it to retain. io.EOF means the stream
// ended cleanly between frames.
func (fr *FrameReader) Next() ([]byte, error) {
	if _, err := io.ReadFull(fr.br, fr.hdr[:1]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, ErrTornFrame
	}
	if _, err := io.ReadFull(fr.br, fr.hdr[1:]); err != nil {
		return nil, ErrTornFrame
	}
	n := binary.LittleEndian.Uint32(fr.hdr[0:4])
	if n > maxRecord {
		return nil, ErrTornFrame
	}
	if cap(fr.payload) < int(n) {
		fr.payload = make([]byte, n)
	}
	fr.payload = fr.payload[:n]
	if _, err := io.ReadFull(fr.br, fr.payload); err != nil {
		return nil, ErrTornFrame
	}
	if crc32.Checksum(fr.payload, castagnoli) != binary.LittleEndian.Uint32(fr.hdr[4:8]) {
		return nil, ErrTornFrame
	}
	return fr.payload, nil
}

// Segment describes one on-disk WAL segment file.
type Segment struct {
	Path  string
	First int // ID of the segment's first record (its name)
}

// Segments lists dir's WAL segments ascending by first ID.
func Segments(dir string) ([]Segment, error) {
	paths, firsts, err := listNumbered(walDir(dir), "seg-", ".log")
	if err != nil {
		return nil, err
	}
	out := make([]Segment, len(paths))
	for i := range paths {
		out[i] = Segment{Path: paths[i], First: firsts[i]}
	}
	return out, nil
}

// LatestSnapshot returns the newest snapshot file under dir and the
// next-ID bound it covers; ok is false when no snapshot exists.
func LatestSnapshot(dir string) (path string, next int, ok bool, err error) {
	snaps, nums, err := listNumbered(snapDir(dir), "snap-", ".snap")
	if err != nil {
		return "", 0, false, err
	}
	if len(snaps) == 0 {
		return "", 0, false, nil
	}
	return snaps[len(snaps)-1], nums[len(nums)-1], true, nil
}

// SnapPath returns where a snapshot covering IDs < next lives under dir
// — the follower-side sink writes shipped snapshots to the same name the
// primary used.
func SnapPath(dir string, next int) string { return snapFile(dir, next) }

// SegPath returns the segment path for a segment whose first record
// carries the given ID.
func SegPath(dir string, first int) string { return segPath(dir, first) }

// WALDirOf and SnapDirOf expose the fixed sub-directory layout.
func WALDirOf(dir string) string  { return walDir(dir) }
func SnapDirOf(dir string) string { return snapDir(dir) }

// Frontier returns the next record ID the log expects — one past the
// highest ID ever appended (buffered records included).
func (l *Log) Frontier() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq
}

// SetCompactPin installs fn, consulted by segment compaction: a segment
// holding any record with ID >= fn() survives even when a snapshot made
// it redundant. The replication registry uses it to keep segments a
// registered (or recently disconnected, within the grace window)
// follower has not shipped yet. fn must be safe to call from the
// snapshotting goroutine; a fn returning a negative value pins nothing.
func (l *Log) SetCompactPin(fn func() int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.pinFn = fn
}

// compactPin returns the current pin: the lowest record ID that must
// stay on disk (MaxInt when unpinned).
func (l *Log) compactPin() int {
	l.mu.Lock()
	fn := l.pinFn
	l.mu.Unlock()
	const maxInt = int(^uint(0) >> 1)
	if fn == nil {
		return maxInt
	}
	if p := fn(); p >= 0 {
		return p
	}
	return maxInt
}
