// Package wal gives the G-RCA event store durability: a segmented,
// append-only write-ahead log of normalized event instances with
// per-record CRC32C framing, periodic snapshots of the full store, and
// startup recovery that replays snapshot+tail into a byte-identical
// store. The paper's platform ran as a shared service continuously fed by
// many applications (§II); this package is what lets the reproduction
// survive a restart without replaying raw feeds.
//
// # Layout and invariants
//
//	<dir>/wal/seg-<firstID>.log    framed records, IDs ascending from firstID
//	<dir>/snap/snap-<nextID>.snap  full store dump covering IDs < nextID
//
// Every record carries its store ID explicitly: one Log serves one
// Memory shard, and under a sharded store a shard holds a sparse,
// strictly ascending subsequence of the global ID space, so position in
// the log cannot determine the ID. The log observes every insert through
// the store's append hook and rejects any ID regression. Recovery
// restores the newest readable snapshot, then replays exactly the
// records with ID ≥ the snapshot's next-ID. A torn final record (crash
// mid-write) is truncated, not fatal: the recovered store is the longest
// committed prefix of the log. Snapshots make the segments
// below them redundant, so Snapshot deletes them — with the store's
// retention eviction triggering snapshots, disk usage stays bounded the
// same way the store's window bounds memory.
//
// # Concurrency
//
// One Log serves one Store. Inserts may come from any goroutine (the
// append hook buffers under the log's own lock), but Commit, Snapshot,
// and Close are meant to be driven by a single owner — the serving
// pipeline's applier loop.
package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"grca/internal/event"
	"grca/internal/obs"
	"grca/internal/store"
)

// Durability metrics: commit and fsync volume tell an operator what the
// chosen fsync policy actually costs; pending bytes is the loss window a
// crash would tear off under -fsync=interval.
var (
	mAppends      = obs.GetCounter("wal.appends")
	mCommits      = obs.GetCounter("wal.commits")
	mCoalesced    = obs.GetCounter("wal.commits.coalesced")
	mFsyncs       = obs.GetCounter("wal.fsyncs")
	mSnapshots    = obs.GetCounter("wal.snapshots")
	mCompacted    = obs.GetCounter("wal.segments.compacted")
	mPendingBytes = obs.GetGauge("wal.pending.bytes")
	mCommitSecs   = obs.GetHistogram("wal.commit.seconds", obs.LatencyBuckets)
)

// FsyncPolicy selects when appended records are forced to stable storage.
type FsyncPolicy string

const (
	// FsyncBatch syncs on every Commit — the applier calls Commit once
	// per applied ingest batch, so an acknowledged batch is durable.
	FsyncBatch FsyncPolicy = "batch"
	// FsyncInterval syncs on a background timer; a crash may lose up to
	// one interval of acknowledged records (never torn ones — framing
	// still bounds the damage to the torn tail).
	FsyncInterval FsyncPolicy = "interval"
)

// ParseFsyncPolicy resolves a policy name as written on the command line.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch FsyncPolicy(strings.ToLower(strings.TrimSpace(s))) {
	case FsyncBatch:
		return FsyncBatch, nil
	case FsyncInterval:
		return FsyncInterval, nil
	}
	return "", fmt.Errorf("wal: unknown fsync policy %q (have batch, interval)", s)
}

// Options tunes a Log. The zero value takes every documented default.
type Options struct {
	// Fsync selects the durability policy (default FsyncBatch).
	Fsync FsyncPolicy
	// FsyncInterval is the background sync period under FsyncInterval
	// (default 200ms).
	FsyncInterval time.Duration
	// SegmentBytes is the soft segment-rotation threshold (default 64MiB);
	// flushes split at record boundaries, so a segment only exceeds it
	// when a single record does.
	SegmentBytes int64
	// SnapshotEvery, when positive, auto-snapshots after that many
	// records have been committed since the last snapshot. Zero leaves
	// snapshots to explicit Snapshot calls (shutdown, eviction hooks).
	SnapshotEvery int
	// Retention, when positive, is the store's retention window. It is
	// applied to the store before recovery so that replay re-evicts
	// exactly as the original run did — recovering with a different
	// retention than the log was written under yields a different store.
	Retention time.Duration
	// GroupWindow, when positive under FsyncBatch, enables group commit:
	// the first Commit of a burst becomes the leader, waits up to this
	// long for concurrent committers' records to land in the pending
	// buffer, then flushes and fsyncs once for the whole group. Commits
	// whose records were covered by another leader's sync return without
	// touching the disk at all. Zero keeps one fsync per Commit.
	GroupWindow time.Duration
	// ReplayWorkers is the number of goroutines decoding records during
	// recovery (segments and snapshot alike). The frame scan and the
	// store applies stay sequential, so the recovered store is
	// byte-identical for every worker count. Zero means GOMAXPROCS.
	ReplayWorkers int
}

func (o *Options) defaults() {
	if o.Fsync == "" {
		o.Fsync = FsyncBatch
	}
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = 200 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
}

// Recovery reports what Open reconstructed.
type Recovery struct {
	// SnapshotNext is the next-ID bound of the snapshot restored (0 =
	// started from an empty store).
	SnapshotNext int
	// SnapshotLive is how many live instances the snapshot held.
	SnapshotLive int
	// Replayed is how many tail records were replayed from segments.
	Replayed int
	// TruncatedBytes is how much torn tail was cut off the log.
	TruncatedBytes int64
	// DroppedSegments counts whole segments discarded beyond a torn
	// record.
	DroppedSegments int
}

// Log is an open write-ahead log bound to one store.
type Log struct {
	dir  string
	opts Options
	st   *store.Memory

	mu         sync.Mutex
	buf        []byte // framed records awaiting write
	bufStarts  []int  // byte offset in buf where each pending record begins
	bufIDs     []int  // store ID of each pending record (for segment naming)
	scratch    []byte
	bufRecords int
	seg        *os.File
	segPath    string
	segBytes   int64
	nextSeq    int // lowest ID the next appended record may carry
	snapNext   int // next-ID covered by the latest durable snapshot
	sinceSnap  int // records committed since that snapshot
	closed     bool
	err        error // first write/sync failure; sticky

	// Group commit: records with ID < syncedSeq are on stable storage;
	// syncing marks a leader inside its window or fsync, and syncCond
	// (on mu) wakes the followers riding that sync.
	syncedSeq int
	syncing   bool
	syncCond  *sync.Cond

	// pinFn, when set, bounds compaction from below: segments holding
	// records at or above its return value stay on disk (replication
	// followers that have not shipped them yet). Guarded by mu.
	pinFn func() int

	snapMu sync.Mutex // serializes Snapshot end to end

	stop chan struct{}
	done chan struct{}
}

// Open recovers the log under dir into a fresh store and returns both,
// with the store's append hook attached so every subsequent insert is
// logged. dir is created as needed.
func Open(dir string, opts Options) (*Log, *store.Memory, Recovery, error) {
	opts.defaults()
	for _, sub := range []string{walDir(dir), snapDir(dir)} {
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return nil, nil, Recovery{}, err
		}
	}
	l := &Log{dir: dir, opts: opts, st: store.New()}
	l.syncCond = sync.NewCond(&l.mu)
	if opts.Retention > 0 {
		l.st.SetRetention(opts.Retention)
	}
	rec, err := l.recover()
	if err != nil {
		return nil, nil, rec, err
	}
	l.syncedSeq = l.nextSeq // everything recovered is already on disk
	l.st.OnAppend(l.record)
	if opts.Fsync == FsyncInterval {
		l.stop = make(chan struct{})
		l.done = make(chan struct{})
		go l.flusher()
	}
	return l, l.st, rec, nil
}

// Store returns the store the log recovers into and observes.
func (l *Log) Store() *store.Memory { return l.st }

// record is the store append hook: it frames the instance into the
// pending buffer. Called under the store's write lock, so it only
// touches the log's own state.
func (l *Log) record(in *event.Instance) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	if in.ID < l.nextSeq {
		// The store and log disagree on IDs — a second writer bypassed
		// recovery, or IDs regressed. Poison the log rather than persist
		// a corrupt order. (IDs above nextSeq are legal: a shard of a
		// sharded store skips the IDs other shards were allocated.)
		if l.err == nil {
			l.err = fmt.Errorf("wal: append ID %d, log expects ≥ %d", in.ID, l.nextSeq)
		}
		return
	}
	l.scratch = appendRecord(l.scratch[:0], in)
	l.bufStarts = append(l.bufStarts, len(l.buf))
	l.bufIDs = append(l.bufIDs, in.ID)
	l.buf = appendFrame(l.buf, l.scratch)
	l.bufRecords++
	l.nextSeq = in.ID + 1
	mAppends.Inc()
	mPendingBytes.Set(int64(len(l.buf)))
}

// Commit writes the pending records to the active segment and, under
// FsyncBatch, forces them to disk. It also rotates segments past the size
// threshold and triggers an auto-snapshot when SnapshotEvery is due.
// An acknowledged Commit under FsyncBatch means the records survive
// kill -9. With Options.GroupWindow set, concurrent Commits coalesce
// into one fsync; the durability contract is unchanged.
func (l *Log) Commit() error {
	var err error
	if l.opts.Fsync == FsyncBatch && l.opts.GroupWindow > 0 {
		err = l.groupCommit()
	} else {
		err = l.flush(l.opts.Fsync == FsyncBatch)
	}
	if err != nil {
		return err
	}
	l.mu.Lock()
	due := l.opts.SnapshotEvery > 0 && l.sinceSnap >= l.opts.SnapshotEvery
	l.mu.Unlock()
	if due {
		return l.Snapshot()
	}
	return nil
}

// Sync flushes and fsyncs regardless of policy.
func (l *Log) Sync() error { return l.flush(true) }

// groupCommit is Commit under Options.GroupWindow: the caller's records
// must be durable on return, but the fsync making them so may be issued
// by any committer. The first arrival becomes the leader; it releases
// the lock for the window so stragglers can append, then flushes and
// syncs everything pending. Arrivals during an in-flight sync wait on
// the condition and usually find their records already covered. The
// unlocked window lives between two lock-scoped helpers so every
// critical section is a plain lock/defer pair.
func (l *Log) groupCommit() error {
	began := obs.Now()
	target, lead, err := l.groupEnter()
	if err != nil || !lead {
		return err
	}
	time.Sleep(l.opts.GroupWindow) // bounded wait for the group to form
	return l.groupFinish(target, began)
}

// groupEnter waits out any in-flight sync and decides this committer's
// role: done (covered by a previous sync or a sticky error) or leader
// (syncing is set and the caller owns the window).
func (l *Log) groupEnter() (target int, lead bool, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	target = l.nextSeq // records this committer needs durable
	for l.syncing {
		if l.err != nil || l.syncedSeq >= target {
			break
		}
		l.syncCond.Wait()
	}
	if l.err != nil {
		return 0, false, l.err
	}
	if l.syncedSeq >= target {
		mCoalesced.Inc()
		return 0, false, nil
	}
	if l.closed {
		return 0, false, fmt.Errorf("wal: log closed")
	}
	l.syncing = true
	return target, true, nil
}

// groupFinish is the leader's second half: flush and fsync whatever the
// window gathered, then wake the followers riding this sync.
func (l *Log) groupFinish(target int, began time.Time) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	var err error
	switch {
	case l.err != nil:
		err = l.err
	case l.syncedSeq >= target && len(l.buf) == 0:
		// Close (or a snapshot's Sync) flushed everything while the
		// window was open; nothing left to do.
	case l.closed:
		err = fmt.Errorf("wal: log closed")
	case len(l.buf) > 0:
		err = l.flushLocked(true, began)
	default:
		// Pending buffer drained by a non-syncing path; force the sync
		// the caller was promised.
		if err = fileSync(l.seg); err != nil {
			l.err = err
		} else {
			mFsyncs.Inc()
			l.syncedSeq = l.nextSeq
		}
	}
	l.syncing = false
	l.syncCond.Broadcast()
	return err
}

func (l *Log) flush(sync bool) error {
	began := obs.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushLocked(sync, began)
}

func (l *Log) flushLocked(sync bool, began time.Time) error {
	if l.err != nil {
		return l.err
	}
	if l.closed {
		return fmt.Errorf("wal: log closed")
	}
	if len(l.buf) == 0 {
		return nil
	}
	// Write the buffer in chunks split at record boundaries, rotating
	// between chunks, so every record of a segment is consecutive from the
	// ID in its name and SegmentBytes bounds segment size (a lone record
	// larger than the threshold still goes out whole).
	recEnd := func(i int) int {
		if i+1 < len(l.bufStarts) {
			return l.bufStarts[i+1]
		}
		return len(l.buf)
	}
	written, off := 0, 0
	for written < l.bufRecords {
		if l.seg == nil || l.segBytes >= l.opts.SegmentBytes {
			if err := l.rotateAtLocked(l.bufIDs[written]); err != nil {
				l.err = err
				return err
			}
		}
		capacity := l.opts.SegmentBytes - l.segBytes
		end := written + 1 // always make progress
		for end < l.bufRecords && int64(recEnd(end)-off) <= capacity {
			end++
		}
		chunk := recEnd(end - 1)
		n, err := l.seg.Write(l.buf[off:chunk])
		l.segBytes += int64(n)
		if err != nil {
			l.err = err
			return err
		}
		off, written = chunk, end
	}
	if sync {
		if err := fileSync(l.seg); err != nil {
			l.err = err
			return err
		}
		mFsyncs.Inc()
		l.syncedSeq = l.nextSeq
	}
	l.sinceSnap += l.bufRecords
	l.buf = l.buf[:0]
	l.bufStarts = l.bufStarts[:0]
	l.bufIDs = l.bufIDs[:0]
	l.bufRecords = 0
	mCommits.Inc()
	mPendingBytes.Set(0)
	mCommitSecs.ObserveDuration(obs.Since(began))
	return nil
}

// rotateAtLocked syncs and closes the active segment and opens a fresh
// one named for the ID of the next record it will hold.
func (l *Log) rotateAtLocked(first int) error {
	if l.seg != nil {
		if err := fileSync(l.seg); err != nil {
			return err
		}
		if err := l.seg.Close(); err != nil {
			return err
		}
	}
	path := segPath(l.dir, first)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	l.seg, l.segPath, l.segBytes = f, path, 0
	return nil
}

// flusher is the FsyncInterval background loop.
func (l *Log) flusher() {
	defer close(l.done)
	t := time.NewTicker(l.opts.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			l.mu.Lock()
			if !l.closed && l.err == nil && len(l.buf) > 0 {
				l.flushLocked(true, obs.Now()) //nolint:errcheck // sticky in l.err
			}
			l.mu.Unlock()
		case <-l.stop:
			return
		}
	}
}

// SinceSnapshot reports how many committed records the latest snapshot
// does not cover.
func (l *Log) SinceSnapshot() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sinceSnap
}

// Close flushes and syncs pending records and closes the active segment.
// It does not snapshot; callers wanting a fast next boot call Snapshot
// first.
func (l *Log) Close() error {
	if l.stop != nil {
		close(l.stop)
		<-l.done
		l.stop = nil
	}
	flushErr := l.flush(true)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return flushErr
	}
	l.closed = true
	if l.seg != nil {
		if err := l.seg.Close(); err != nil && flushErr == nil {
			flushErr = err
		}
		l.seg = nil
	}
	return flushErr
}

// ---------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------

func walDir(dir string) string  { return filepath.Join(dir, "wal") }
func snapDir(dir string) string { return filepath.Join(dir, "snap") }

func segPath(dir string, first int) string {
	return filepath.Join(walDir(dir), fmt.Sprintf("seg-%016d.log", first))
}

// listNumbered returns the numbered files matching prefix/suffix in dir,
// sorted ascending by their embedded number.
func listNumbered(dir, prefix, suffix string) ([]string, []int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	type nf struct {
		name string
		n    int
	}
	var out []nf
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
			continue
		}
		num, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix))
		if err != nil {
			continue
		}
		out = append(out, nf{name, num})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].n < out[j].n })
	names := make([]string, len(out))
	nums := make([]int, len(out))
	for i, f := range out {
		names[i] = filepath.Join(dir, f.name)
		nums[i] = f.n
	}
	return names, nums, nil
}

// recover restores the newest readable snapshot and replays the segment
// tail. On a torn or corrupt record it truncates the log there and drops
// any later segments: the recovered store is the longest committed
// prefix.
func (l *Log) recover() (Recovery, error) {
	var rec Recovery
	if err := l.loadLatestSnapshot(&rec); err != nil {
		return rec, err
	}
	segs, firsts, err := listNumbered(walDir(l.dir), "seg-", ".log")
	if err != nil {
		return rec, err
	}
	expected := rec.SnapshotNext // next ID the store will assign
	lastEnd := -1                // ID after the last record of the last kept segment
	torn := false
	for i, path := range segs {
		if torn {
			if err := os.Remove(path); err != nil {
				return rec, err
			}
			rec.DroppedSegments++
			continue
		}
		if firsts[i] < 0 {
			return rec, fmt.Errorf("wal: segment %s has a negative first ID", path)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return rec, err
		}
		// Replay in three stages: a sequential frame scan (CRC checks,
		// torn-tail detection, skip-or-replay by the record's explicit
		// ID), parallel record decoding, and sequential in-order store
		// applies — so the recovered store is byte-identical for any
		// worker count.
		type pendRec struct {
			seq     int
			payload []byte
		}
		var pend []pendRec
		off := int64(0)
		rest := data
		prev := -1
		lastEnd = firsts[i] // empty segment: append resumes at its name
		for len(rest) > 0 {
			payload, r2, ok := readFrame(rest)
			if !ok {
				// Torn tail: cut the file back to the committed prefix.
				torn = true
				rec.TruncatedBytes += int64(len(rest))
				if err := os.Truncate(path, off); err != nil {
					return rec, err
				}
				break
			}
			id, err := recordID(payload)
			if err != nil {
				return rec, fmt.Errorf("wal: %s: %v", path, err)
			}
			if id <= prev {
				return rec, fmt.Errorf("wal: %s record ID %d not ascending (previous %d)", path, id, prev)
			}
			prev = id
			if id >= expected {
				pend = append(pend, pendRec{id, payload})
			}
			off += int64(frameHeader + len(payload))
			rest = r2
		}
		ins := make([]event.Instance, len(pend))
		err = parallelIndexed(len(pend), l.opts.replayWorkers(), func(i int) error {
			in, err := decodeRecord(pend[i].payload)
			if err != nil {
				// Framing intact but the payload is gibberish — not a
				// torn write, refuse to guess.
				return fmt.Errorf("wal: %s record %d: %v", path, pend[i].seq, err)
			}
			ins[i] = in
			return nil
		})
		if err != nil {
			return rec, err
		}
		for i := range ins {
			if _, err := l.st.Put(ins[i]); err != nil {
				return rec, fmt.Errorf("wal: %s replay record %d: %v", path, pend[i].seq, err)
			}
			rec.Replayed++
			expected = pend[i].seq + 1
		}
		if prev >= 0 {
			lastEnd = prev + 1
		}
	}
	l.nextSeq = expected
	l.snapNext = rec.SnapshotNext
	l.sinceSnap = expected - rec.SnapshotNext

	// Reopen the tail segment for appending — unless its record range
	// would leave a numbering gap (all its records predate the snapshot
	// restore point, or no segments survive), in which case start fresh.
	if lastEnd == l.nextSeq && len(segs) > 0 {
		last := segs[len(segs)-1]
		if torn {
			last = keptTail(segs, rec.DroppedSegments)
		}
		f, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return rec, err
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return rec, err
		}
		l.seg, l.segPath, l.segBytes = f, last, st.Size()
		return rec, nil
	}
	if err := l.rotateAtLocked(l.nextSeq); err != nil {
		return rec, err
	}
	return rec, nil
}

// keptTail returns the last segment that survived recovery when dropped
// trailing segments were removed.
func keptTail(segs []string, dropped int) string {
	return segs[len(segs)-1-dropped]
}
