package wal

import (
	"math/rand"
	"os"
	"sync"
	"testing"
	"time"

	"grca/internal/event"
)

// TestGroupCommitCoalesces: concurrent committers under a group window
// must all come back durable while sharing fsyncs. The fsync count is
// scheduler-dependent, so the assertion is the coalescing invariant
// (fewer fsyncs than commits would need alone) plus full durability.
func TestGroupCommitCoalesces(t *testing.T) {
	dir := t.TempDir()
	l, st, _, err := Open(dir, Options{GroupWindow: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	const writers = 32
	ins := genEvents(23, writers)
	fsyncsBefore := mFsyncs.Value()

	start := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			st.Add(ins[w])
			if err := l.Commit(); err != nil {
				t.Errorf("writer %d: %v", w, err)
			}
		}(w)
	}
	close(start)
	wg.Wait()
	fsyncs := mFsyncs.Value() - fsyncsBefore
	if fsyncs >= writers {
		t.Errorf("%d commits took %d fsyncs: no coalescing happened", writers, fsyncs)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, st2, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Replayed != writers {
		t.Fatalf("replayed %d, want %d", rec.Replayed, writers)
	}
	if StoreDigest(st2) != StoreDigest(st) {
		t.Fatal("group-committed store did not recover byte-identically")
	}
}

// segTotalSize sums the on-disk segment bytes — what a crash at this
// instant could at most preserve, and (because Commit returns only
// after its fsync) at least preserve for the records acknowledged so
// far by this caller.
func segTotalSize(t *testing.T, dir string) int64 {
	t.Helper()
	segs, _, err := listNumbered(walDir(dir), "seg-", ".log")
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, p := range segs {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		total += fi.Size()
	}
	return total
}

// TestGroupCommitCrashProperty is the crash-point property test for the
// coalesced-fsync window: concurrent writers append batches and group-
// commit them; the log is then cut at a random byte offset — including
// offsets inside the window where a leader's fsync had not yet covered
// later appends — and recovery must yield exactly an ID-prefix of the
// appended records (never torn, never reordered), containing every
// batch that was acknowledged while the log was still at least cut
// bytes long. Acknowledged = durable.
func TestGroupCommitCrashProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 6; trial++ {
		dir := t.TempDir()
		l, st, _, err := Open(dir, Options{GroupWindow: 300 * time.Microsecond, SegmentBytes: 8 << 10})
		if err != nil {
			t.Fatal(err)
		}
		const writers, batches, perBatch = 6, 4, 5
		pool := genEvents(int64(100+trial), writers*batches*perBatch)
		byID := make([]event.Instance, len(pool)) // instances in store-ID order
		type ack struct {
			ids  []int
			size int64 // on-disk bytes when the ack came back
		}
		var (
			mu    sync.Mutex
			acked []ack
			wg    sync.WaitGroup
		)
		start := make(chan struct{})
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				<-start
				for b := 0; b < batches; b++ {
					ids := make([]int, 0, perBatch)
					for j := 0; j < perBatch; j++ {
						in := pool[(w*batches+b)*perBatch+j]
						stored := st.Add(in)
						mu.Lock()
						byID[stored.ID] = in
						mu.Unlock()
						ids = append(ids, stored.ID)
					}
					if err := l.Commit(); err != nil {
						t.Errorf("writer %d: %v", w, err)
						return
					}
					size := segTotalSize(t, dir)
					mu.Lock()
					acked = append(acked, ack{ids, size})
					mu.Unlock()
				}
			}(w)
		}
		close(start)
		wg.Wait()
		if t.Failed() {
			t.Fatal("a writer's commit failed")
		}
		// Crash (no Close): cut the log at a random byte offset and drop
		// everything beyond, as kill -9 drops unsynced page cache.
		total := segTotalSize(t, dir)
		cut := int(rng.Int63n(total + 1))
		if trial == 0 {
			cut = int(total)
		}
		crashAt(t, dir, cut)

		_, st2, _, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("trial %d (cut %d/%d): recovery failed: %v", trial, cut, total, err)
		}
		k := st2.Len()
		if got, want := StoreDigest(st2), digestOfPrefix(byID, k); got != want {
			t.Fatalf("trial %d: cut %d: recovered store is not the ID-prefix of length %d", trial, cut, k)
		}
		for _, a := range acked {
			if a.size > int64(cut) {
				continue // the crash predates this ack's durable point
			}
			for _, id := range a.ids {
				if id >= k {
					t.Fatalf("trial %d: cut %d ≥ acked size %d, but acknowledged record %d was lost (prefix %d)",
						trial, cut, a.size, id, k)
				}
			}
		}
	}
}

// TestParallelReplayDeterminism: recovery with 1, 2, and 8 decode
// workers must produce byte-identical stores and identical recovery
// reports, over a log that mixes a snapshot with a multi-segment tail.
func TestParallelReplayDeterminism(t *testing.T) {
	dir := t.TempDir()
	ins := genEvents(41, 1200)
	l, st, _, err := Open(dir, Options{SegmentBytes: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	st.AddAll(ins[:700])
	if err := l.Snapshot(); err != nil {
		t.Fatal(err)
	}
	st.AddAll(ins[700:])
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	want := StoreDigest(st)
	var rec0 Recovery
	for i, workers := range []int{1, 2, 8} {
		l2, st2, rec, err := Open(dir, Options{ReplayWorkers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := StoreDigest(st2); got != want {
			t.Fatalf("workers=%d: recovered digest differs from the original", workers)
		}
		if i == 0 {
			rec0 = rec
		} else if rec != rec0 {
			t.Fatalf("workers=%d: recovery report %+v differs from single-worker %+v", workers, rec, rec0)
		}
		if err := l2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestParallelReplayCorruptRecordDeterministicError: a corrupted record
// body (intact frame, gibberish payload) must produce the same fatal
// error for every worker count.
func TestParallelReplayCorruptRecordDeterministicError(t *testing.T) {
	dir := t.TempDir()
	ins := genEvents(43, 50)
	l, st, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st.AddAll(ins)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _, err := listNumbered(walDir(dir), "seg-", ".log")
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v (%d)", err, len(segs))
	}
	// Replace record 7's payload with garbage of the same length and fix
	// up its CRC so the framing stays valid.
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	off := 0
	for i := 0; i < 7; i++ {
		off += encodedSize(&ins[i])
	}
	n := encodedSize(&ins[7]) - frameHeader
	garbage := make([]byte, n)
	for i := range garbage {
		garbage[i] = 0xff
	}
	patched := append(append(append([]byte{}, data[:off]...), appendFrame(nil, garbage)...), data[off+frameHeader+n:]...)
	if err := os.WriteFile(segs[0], patched, 0o644); err != nil {
		t.Fatal(err)
	}
	var msgs []string
	for _, workers := range []int{1, 8} {
		_, _, _, err := Open(dir, Options{ReplayWorkers: workers})
		if err == nil {
			t.Fatalf("workers=%d: corrupt record recovered without error", workers)
		}
		msgs = append(msgs, err.Error())
	}
	if msgs[0] != msgs[1] {
		t.Fatalf("error differs by worker count:\n1: %s\n8: %s", msgs[0], msgs[1])
	}
}

// BenchmarkOpenReplay measures recovery (the restart path) over a
// 20k-record segment tail; the serve-level 10× restart figure lives in
// BENCH_SERVE.json.
func BenchmarkOpenReplay(b *testing.B) {
	dir := b.TempDir()
	ins := genEvents(51, 20000)
	l, st, _, err := Open(dir, Options{})
	if err != nil {
		b.Fatal(err)
	}
	st.AddAll(ins)
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l2, st2, _, err := Open(dir, Options{})
		if err != nil {
			b.Fatal(err)
		}
		if st2.Len() != len(ins) {
			b.Fatalf("recovered %d, want %d", st2.Len(), len(ins))
		}
		l2.Close()
	}
}
