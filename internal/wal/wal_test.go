package wal

import (
	"fmt"
	"math/rand"
	"os"
	"testing"
	"time"

	"grca/internal/event"
	"grca/internal/locus"
	"grca/internal/store"
)

// genEvents builds a deterministic mix of instances: varied names,
// locations, durations, attribute maps, and mild time disorder — the
// shapes the collector actually stores.
func genEvents(seed int64, n int) []event.Instance {
	rng := rand.New(rand.NewSource(seed))
	base := time.Date(2010, 1, 5, 0, 0, 0, 0, time.UTC)
	names := []string{"BGP neighbor flap", "Interface down", "Link congestion", "syslog:LINK-3-UPDOWN"}
	out := make([]event.Instance, n)
	for i := range out {
		start := base.Add(time.Duration(i)*11*time.Second - time.Duration(rng.Intn(20))*time.Second)
		in := event.Instance{
			Name:  names[rng.Intn(len(names))],
			Start: start,
			End:   start.Add(time.Duration(rng.Intn(600)) * time.Second),
			Loc:   locus.Between(locus.Interface, fmt.Sprintf("r%d.pop%02d", rng.Intn(6), rng.Intn(3)), fmt.Sprintf("ge-0/0/%d", rng.Intn(4))),
		}
		if rng.Intn(2) == 0 {
			in.Attrs = map[string]string{
				"raw":  fmt.Sprintf("line %d", i),
				"peer": fmt.Sprintf("10.0.%d.%d", rng.Intn(8), rng.Intn(250)),
			}
		}
		out[i] = in
	}
	return out
}

// digestOfPrefix returns the digest of a store holding exactly the first
// k generated events.
func digestOfPrefix(ins []event.Instance, k int) string {
	st := store.New()
	st.AddAll(ins[:k])
	return StoreDigest(st)
}

func TestRoundtripCleanClose(t *testing.T) {
	dir := t.TempDir()
	ins := genEvents(1, 500)
	l, st, rec, err := Open(dir, Options{SegmentBytes: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if rec.SnapshotNext != 0 || rec.Replayed != 0 {
		t.Fatalf("fresh dir recovered %+v", rec)
	}
	st.AddAll(ins)
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, st2, rec2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec2.Replayed != len(ins) {
		t.Fatalf("replayed %d records, want %d", rec2.Replayed, len(ins))
	}
	if got, want := StoreDigest(st2), StoreDigest(st); got != want {
		t.Fatal("recovered store digest differs from the original")
	}
	// Appends continue with the right IDs after recovery.
	more := genEvents(2, 50)
	st2.AddAll(more)
	if err := l2.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	_, st3, rec3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec3.Replayed != len(ins)+len(more) {
		t.Fatalf("second recovery replayed %d, want %d", rec3.Replayed, len(ins)+len(more))
	}
	if st3.Len() != len(ins)+len(more) {
		t.Fatalf("recovered %d events, want %d", st3.Len(), len(ins)+len(more))
	}
}

// TestCrashRecoveryProperty is the torn-write property test: the log is
// cut at a random byte offset — between records, inside a record body,
// inside a frame header — and recovery must produce a store
// byte-identical to the longest committed prefix of records, never an
// error.
func TestCrashRecoveryProperty(t *testing.T) {
	ins := genEvents(7, 400)
	sizes := make([]int, len(ins))
	total := 0
	for i := range ins {
		// Records encode their store ID, so sizes depend on the IDs
		// AddAll will assign below.
		ins[i].ID = i
		sizes[i] = encodedSize(&ins[i])
		total += sizes[i]
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		dir := t.TempDir()
		l, st, _, err := Open(dir, Options{SegmentBytes: 4 << 10})
		if err != nil {
			t.Fatal(err)
		}
		st.AddAll(ins)
		if err := l.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}

		cut := rng.Intn(total + 1)
		if trial == 0 {
			cut = total // no damage
		}
		crashAt(t, dir, cut)

		// Longest committed prefix: records wholly below the cut.
		k, cum := 0, 0
		for k < len(ins) && cum+sizes[k] <= cut {
			cum += sizes[k]
			k++
		}

		l2, st2, rec, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("trial %d (cut %d): recovery failed: %v", trial, cut, err)
		}
		if got, want := StoreDigest(st2), digestOfPrefix(ins, k); got != want {
			t.Fatalf("trial %d: cut %d bytes → recovered %d events, digest mismatch vs committed prefix %d",
				trial, cut, st2.Len(), k)
		}
		if cut < total && rec.TruncatedBytes == 0 && k < len(ins) && cut != cumulativeEnd(sizes, k) {
			t.Fatalf("trial %d: cut %d tore a record but recovery reported no truncation", trial, cut)
		}
		// The log must keep working after a torn recovery: append, close,
		// reopen, and the tail must be there.
		extra := genEvents(int64(1000+trial), 5)
		st2.AddAll(extra)
		if err := l2.Commit(); err != nil {
			t.Fatal(err)
		}
		if err := l2.Close(); err != nil {
			t.Fatal(err)
		}
		_, st3, _, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if st3.Len() != k+len(extra) {
			t.Fatalf("trial %d: post-crash append lost events: %d, want %d", trial, st3.Len(), k+len(extra))
		}
	}
}

// cumulativeEnd returns the byte offset at which record k ends.
func cumulativeEnd(sizes []int, k int) int {
	sum := 0
	for i := 0; i < k; i++ {
		sum += sizes[i]
	}
	return sum
}

// crashAt simulates kill -9 at a global byte offset: the segment holding
// the offset is truncated there and every later segment vanishes, as if
// the page cache beyond the synced prefix was lost.
func crashAt(t *testing.T, dir string, cut int) {
	t.Helper()
	segs, _, err := listNumbered(walDir(dir), "seg-", ".log")
	if err != nil {
		t.Fatal(err)
	}
	off := int64(cut)
	for _, path := range segs {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case off >= fi.Size():
			off -= fi.Size()
		case off <= 0:
			if err := os.Remove(path); err != nil {
				t.Fatal(err)
			}
		default:
			if err := os.Truncate(path, off); err != nil {
				t.Fatal(err)
			}
			off = 0
		}
	}
}

// TestSnapshotTailReplayDeterminism: with periodic snapshots and
// commits interleaved, recovery = snapshot + tail replay; the result
// must be byte-identical to a store that simply held every event (the
// same equivalence the PR-4 cache-on/off tests pin for diagnosis).
func TestSnapshotTailReplayDeterminism(t *testing.T) {
	dir := t.TempDir()
	ins := genEvents(11, 900)
	l, st, _, err := Open(dir, Options{SegmentBytes: 4 << 10, SnapshotEvery: 120})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(ins); i += 30 {
		end := i + 30
		if end > len(ins) {
			end = len(ins)
		}
		st.AddAll(ins[i:end])
		if err := l.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	snaps, _, err := listNumbered(snapDir(dir), "snap-", ".snap")
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("no auto-snapshot was written")
	}
	if len(snaps) > 2 {
		t.Fatalf("%d snapshots retained, want ≤ 2", len(snaps))
	}

	_, st2, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.SnapshotNext == 0 {
		t.Fatal("recovery ignored the snapshot")
	}
	if rec.Replayed >= len(ins) {
		t.Fatalf("replayed %d records despite a snapshot at %d", rec.Replayed, rec.SnapshotNext)
	}
	if got, want := StoreDigest(st2), digestOfPrefix(ins, len(ins)); got != want {
		t.Fatal("snapshot+tail recovery is not byte-identical to the full store")
	}
}

// TestSnapshotCompactionBoundsDisk: segments fully covered by the older
// retained snapshot are deleted (the newest snapshot keeps its history
// around as its own fallback, so compaction trails one snapshot behind).
func TestSnapshotCompactionBoundsDisk(t *testing.T) {
	dir := t.TempDir()
	ins := genEvents(13, 600)
	l, st, _, err := Open(dir, Options{SegmentBytes: 2 << 10})
	if err != nil {
		t.Fatal(err)
	}
	st.AddAll(ins[:500])
	if err := l.Snapshot(); err != nil {
		t.Fatal(err)
	}
	before, _, err := listNumbered(walDir(dir), "seg-", ".log")
	if err != nil {
		t.Fatal(err)
	}
	if len(before) < 3 {
		t.Fatalf("test needs several segments, got %d", len(before))
	}
	st.AddAll(ins[500:])
	if err := l.Snapshot(); err != nil {
		t.Fatal(err)
	}
	after, firsts, err := listNumbered(walDir(dir), "seg-", ".log")
	if err != nil {
		t.Fatal(err)
	}
	if len(after) >= len(before) {
		t.Fatalf("second snapshot compacted nothing: %d segments before, %d after", len(before), len(after))
	}
	// Everything fully below the older snapshot (next-ID 500) must be
	// gone: at most one surviving segment may start below it.
	if len(after) > 1 && firsts[1] <= 500 {
		t.Fatalf("segment fully below the older snapshot survived: firsts=%v", firsts)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, st2, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := StoreDigest(st2), StoreDigest(st); got != want {
		t.Fatal("compaction changed the recovered state")
	}
}

// TestEvictionSnapshotRecovery: retention eviction plus the OnEvict →
// Snapshot wiring (what grca serve uses) must recover to the evicted
// store's exact state, not resurrect evicted events.
func TestEvictionSnapshotRecovery(t *testing.T) {
	dir := t.TempDir()
	l, st, _, err := Open(dir, Options{SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	st.SetRetention(30 * time.Minute)
	st.OnEvict(func([]*event.Instance, time.Time) {
		if err := l.Snapshot(); err != nil {
			t.Errorf("snapshot on evict: %v", err)
		}
	})
	base := time.Date(2010, 1, 5, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 300; i++ {
		at := base.Add(time.Duration(i) * time.Minute)
		st.Add(event.Instance{Name: "tick", Start: at, End: at, Loc: locus.At(locus.Router, "r0")})
		if i%20 == 19 {
			if err := l.Commit(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if st.Len() == 300 {
		t.Fatal("retention evicted nothing")
	}
	first, last, ok := st.Span()
	if !ok || last.Sub(first) > 40*time.Minute {
		t.Fatalf("span %v–%v exceeds retention+slack", first, last)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, st2, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := StoreDigest(st2), StoreDigest(st); got != want {
		t.Fatal("recovered store differs from the evicted original")
	}
}

func TestIntervalFsyncCloseFlushes(t *testing.T) {
	dir := t.TempDir()
	ins := genEvents(17, 100)
	l, st, _, err := Open(dir, Options{Fsync: FsyncInterval, FsyncInterval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	st.AddAll(ins)
	// No explicit Commit: Close must flush the pending tail.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, st2, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Len() != len(ins) {
		t.Fatalf("interval-fsync close lost events: %d, want %d", st2.Len(), len(ins))
	}
}

func TestTornSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	ins := genEvents(19, 200)
	l, st, _, err := Open(dir, Options{SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	st.AddAll(ins[:150])
	if err := l.Snapshot(); err != nil {
		t.Fatal(err)
	}
	st.AddAll(ins[150:])
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the newest snapshot: recovery must fall back (here, to the
	// segments alone, since only one snapshot exists... the tail after it
	// is gone with the snapshot's coverage — so assert graceful handling,
	// not full recovery).
	snaps, _, err := listNumbered(snapDir(dir), "snap-", ".snap")
	if err != nil || len(snaps) == 0 {
		t.Fatalf("snapshots: %v (%d)", err, len(snaps))
	}
	data, err := os.ReadFile(snaps[len(snaps)-1])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(snaps[len(snaps)-1], data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, st2, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.SnapshotNext != 0 {
		t.Fatalf("corrupt snapshot was trusted: %+v", rec)
	}
	// Compaction only runs when a snapshot succeeds, so the full segment
	// history is still there and recovery rebuilds everything.
	if got, want := StoreDigest(st2), StoreDigest(st); got != want {
		t.Fatal("fallback recovery lost data despite intact segments")
	}
}
