package wal

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"sort"
	"time"

	"grca/internal/event"
	"grca/internal/locus"
	"grca/internal/store"
)

// Record framing: every record — in segments and in snapshots alike — is
//
//	uint32 LE payload length | uint32 LE CRC32C(payload) | payload
//
// The CRC is Castagnoli (CRC32C), the polynomial storage systems
// standardize on for record checksums. A record whose header is short,
// whose length is absurd, or whose CRC does not match marks the end of
// the committed prefix: recovery truncates there instead of failing.
const (
	frameHeader = 8
	// maxRecord bounds a single record so a corrupted length field cannot
	// drive a multi-gigabyte allocation during recovery.
	maxRecord = 16 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendFrame appends the framed payload to b.
func appendFrame(b, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	b = append(b, hdr[:]...)
	return append(b, payload...)
}

// readFrame decodes one frame at the front of b, returning the payload
// and the remaining bytes. ok is false when b holds no complete, intact
// frame — the torn-tail signal.
func readFrame(b []byte) (payload, rest []byte, ok bool) {
	if len(b) < frameHeader {
		return nil, b, false
	}
	n := binary.LittleEndian.Uint32(b[0:4])
	if n > maxRecord || int(n) > len(b)-frameHeader {
		return nil, b, false
	}
	payload = b[frameHeader : frameHeader+int(n)]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(b[4:8]) {
		return nil, b, false
	}
	return payload, b[frameHeader+int(n):], true
}

// appendString appends a uvarint-length-prefixed string.
func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func readString(b []byte) (string, []byte, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 || n > uint64(len(b)-sz) {
		return "", b, fmt.Errorf("wal: truncated string")
	}
	return string(b[sz : sz+int(n)]), b[sz+int(n):], nil
}

// appendRecord encodes one segment record: the instance's store ID
// followed by the instance body. IDs are explicit because a shard of a
// sharded store sees a sparse subsequence of the global ID space, so a
// record's position in its shard's log no longer determines its ID.
func appendRecord(b []byte, in *event.Instance) []byte {
	b = binary.AppendUvarint(b, uint64(in.ID))
	return appendInstance(b, in)
}

// recordID reads just the leading ID of a segment record — what the
// recovery frame scan needs to decide skip-or-replay without paying for
// a full decode.
func recordID(p []byte) (int, error) {
	id, sz := binary.Uvarint(p)
	if sz <= 0 {
		return 0, fmt.Errorf("wal: truncated record ID")
	}
	return int(id), nil
}

// decodeRecord decodes a segment record into the instance it stores,
// with its ID set.
func decodeRecord(p []byte) (event.Instance, error) {
	id, sz := binary.Uvarint(p)
	if sz <= 0 {
		return event.Instance{}, fmt.Errorf("wal: truncated record ID")
	}
	in, err := decodeInstance(p[sz:])
	in.ID = int(id)
	return in, err
}

// appendInstance encodes one event instance (without its store ID — the
// record and snapshot encoders prefix the ID themselves). Attribute keys
// are sorted so the encoding is deterministic.
func appendInstance(b []byte, in *event.Instance) []byte {
	b = appendString(b, in.Name)
	b = binary.AppendVarint(b, in.Start.UnixNano())
	b = binary.AppendVarint(b, in.End.UnixNano())
	b = append(b, byte(in.Loc.Type))
	b = appendString(b, in.Loc.A)
	b = appendString(b, in.Loc.B)
	b = binary.AppendUvarint(b, uint64(len(in.Attrs)))
	if len(in.Attrs) > 0 {
		keys := make([]string, 0, len(in.Attrs))
		for k := range in.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			b = appendString(b, k)
			b = appendString(b, in.Attrs[k])
		}
	}
	return b
}

func decodeInstance(p []byte) (event.Instance, error) {
	var in event.Instance
	var err error
	if in.Name, p, err = readString(p); err != nil {
		return in, err
	}
	start, sz := binary.Varint(p)
	if sz <= 0 {
		return in, fmt.Errorf("wal: truncated start time")
	}
	p = p[sz:]
	end, sz := binary.Varint(p)
	if sz <= 0 {
		return in, fmt.Errorf("wal: truncated end time")
	}
	p = p[sz:]
	in.Start = time.Unix(0, start).UTC()
	in.End = time.Unix(0, end).UTC()
	if len(p) < 1 {
		return in, fmt.Errorf("wal: truncated location type")
	}
	in.Loc.Type = locus.Type(p[0])
	p = p[1:]
	if in.Loc.A, p, err = readString(p); err != nil {
		return in, err
	}
	if in.Loc.B, p, err = readString(p); err != nil {
		return in, err
	}
	nattrs, sz := binary.Uvarint(p)
	if sz <= 0 || nattrs > uint64(len(p)) {
		return in, fmt.Errorf("wal: truncated attribute count")
	}
	p = p[sz:]
	if nattrs > 0 {
		in.Attrs = make(map[string]string, nattrs)
		for i := uint64(0); i < nattrs; i++ {
			var k, v string
			if k, p, err = readString(p); err != nil {
				return in, err
			}
			if v, p, err = readString(p); err != nil {
				return in, err
			}
			in.Attrs[k] = v
		}
	}
	if len(p) != 0 {
		return in, fmt.Errorf("wal: %d trailing bytes after instance", len(p))
	}
	return in, nil
}

// encodedSize returns the framed on-disk size of one instance record —
// what Append will write for it. Exposed for tests that compute committed
// prefixes around byte-level cuts.
func encodedSize(in *event.Instance) int {
	return frameHeader + len(appendRecord(nil, in))
}

// StoreDigest returns a hex SHA-256 over the store's full dumped state —
// ID bounds plus every live instance in canonical encoding. Two stores
// with equal digests hold byte-identical event data; it is the
// equivalence check behind the crash-recovery guarantees. It accepts any
// Store, so a merged Sharded dump digests comparably to a single Memory.
func StoreDigest(st store.Store) string {
	base, next, ins := st.Dump()
	h := sha256.New()
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(base))
	buf = binary.AppendUvarint(buf, uint64(next))
	h.Write(buf)
	for i := range ins {
		buf = buf[:0]
		buf = binary.AppendUvarint(buf, uint64(ins[i].ID))
		buf = appendInstance(buf, &ins[i])
		h.Write(buf)
	}
	return hex.EncodeToString(h.Sum(nil))
}
