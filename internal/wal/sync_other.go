//go:build !linux

package wal

import "os"

// fileSync forces f's data to stable storage; the portable fallback is
// a full fsync.
func fileSync(f *os.File) error { return f.Sync() }
