package wal

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// replayWorkers resolves Options.ReplayWorkers.
func (o Options) replayWorkers() int {
	if o.ReplayWorkers > 0 {
		return o.ReplayWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// parallelIndexed runs f over [0, n) with the given number of workers.
// When several indices fail it returns the lowest-index error, so the
// reported failure is the same for every worker count and schedule —
// parallel recovery must be indistinguishable from sequential.
func parallelIndexed(n, workers int, f func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		errIdx   = n
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := f(i); err != nil {
					mu.Lock()
					if i < errIdx {
						errIdx, firstErr = i, err
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
