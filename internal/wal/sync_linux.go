//go:build linux

package wal

import (
	"os"
	"syscall"
)

// fileSync forces f's data (and the size metadata needed to read it
// back) to stable storage. On Linux this is fdatasync: appends to WAL
// segments and the journal never need the mtime/atime flush a full
// fsync pays for, and on ext4 that skipped metadata commit is a
// measurable slice of every group commit.
func fileSync(f *os.File) error {
	for {
		err := syscall.Fdatasync(int(f.Fd()))
		if err == nil {
			return nil
		}
		if errno, ok := err.(syscall.Errno); !ok || errno != syscall.EINTR {
			return &os.PathError{Op: "fdatasync", Path: f.Name(), Err: err}
		}
	}
}
