package wal

import (
	"os"
)

// Journal is a flat append-only file of opaque framed records — the same
// CRC32C framing as segments, without sequence numbers or snapshots. The
// serving pipeline journals raw ingest batches here: the event WAL can
// recover the normalized store byte-for-byte, but the collector's parse
// state (routing simulations, pairing buffers, rolling baselines) is a
// function of the raw input, so restart recovery replays this journal
// through a fresh collector. Appends fsync before returning; an
// acknowledged batch survives kill -9.
type Journal struct {
	f    *os.File
	path string
	buf  []byte
}

// ReplayJournal streams every committed record of the journal at path to
// fn, truncating a torn tail in place (the longest-committed-prefix
// contract, as for segments). A missing file is an empty journal.
func ReplayJournal(path string, fn func(payload []byte) error) (truncated int64, err error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	off := int64(0)
	rest := data
	for len(rest) > 0 {
		payload, r2, ok := readFrame(rest)
		if !ok {
			truncated = int64(len(rest))
			if err := os.Truncate(path, off); err != nil {
				return truncated, err
			}
			return truncated, nil
		}
		if err := fn(payload); err != nil {
			return 0, err
		}
		off += int64(frameHeader + len(payload))
		rest = r2
	}
	return 0, nil
}

// OpenJournal opens (creating as needed) the journal at path for
// appending. Replay first: opening does not validate existing content.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &Journal{f: f, path: path}, nil
}

// Append frames, writes, and fsyncs one record. This is the serving
// pipeline's batch commit point.
func (j *Journal) Append(payload []byte) error {
	if err := j.AppendNoSync(payload); err != nil {
		return err
	}
	return j.Sync()
}

// AppendNoSync frames and writes one record without forcing it to disk.
// Pair with Sync to commit a group of records under one fsync: none of
// the group is acknowledged until the Sync returns, so the durability
// contract is per-group instead of per-record.
func (j *Journal) AppendNoSync(payload []byte) error {
	j.buf = appendFrame(j.buf[:0], payload)
	_, err := j.f.Write(j.buf)
	return err
}

// Sync forces everything written so far to stable storage.
func (j *Journal) Sync() error { return fileSync(j.f) }

// Close closes the journal file.
func (j *Journal) Close() error { return j.f.Close() }
