package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"

	"grca/internal/event"
)

// Snapshot file format:
//
//	magic "GRCASNAP1" | frame(header) | count × frame(uvarint ID + instance)
//
// where header is uvarint base | uvarint next | uvarint count. Every
// frame carries the standard CRC32C, and count is committed up front, so
// a partially written snapshot is detected and skipped at recovery (the
// write is also staged through a rename, making a torn snapshot unlikely
// in the first place).
const snapMagic = "GRCASNAP1"

func snapFile(dir string, next int) string {
	return filepath.Join(snapDir(dir), fmt.Sprintf("snap-%016d.snap", next))
}

// Snapshot flushes pending records, writes a full dump of the store, and
// compacts: segments made redundant by the snapshot and all but the
// previous snapshot are deleted. With retention eviction feeding this
// (the store's OnEvict hook), disk stays bounded like the store's memory.
//
// The dump streams through a reused scratch buffer and a buffered
// writer — never a full in-memory image — so snapshotting a large store
// costs no large allocations and no growslice copying (it showed up as
// the dominant ingest-path cost before: every 50k-record snapshot
// re-copied a multi-megabyte buffer through doubling growth).
func (l *Log) Snapshot() error {
	l.snapMu.Lock()
	defer l.snapMu.Unlock()
	// Records buffered but unflushed are covered by the dump below; sync
	// them anyway so the log never trails the snapshot's claim.
	if err := l.Sync(); err != nil {
		return err
	}

	tmp := filepath.Join(snapDir(l.dir), "snap.tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<18)
	next := 0
	scratch := make([]byte, 0, 1024)
	frame := make([]byte, 0, 1024)
	werr := l.st.SnapshotTo(
		func(base, n, count int) error {
			next = n
			if _, err := bw.WriteString(snapMagic); err != nil {
				return err
			}
			scratch = binary.AppendUvarint(scratch[:0], uint64(base))
			scratch = binary.AppendUvarint(scratch, uint64(n))
			scratch = binary.AppendUvarint(scratch, uint64(count))
			frame = appendFrame(frame[:0], scratch)
			_, err := bw.Write(frame)
			return err
		},
		func(in *event.Instance) error {
			scratch = binary.AppendUvarint(scratch[:0], uint64(in.ID))
			scratch = appendInstance(scratch, in)
			frame = appendFrame(frame[:0], scratch)
			_, err := bw.Write(frame)
			return err
		})
	if werr == nil {
		werr = bw.Flush()
	}
	if werr == nil {
		werr = fileSync(f)
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return werr
	}
	path := snapFile(l.dir, next)
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	if err := syncDir(snapDir(l.dir)); err != nil {
		return err
	}
	mSnapshots.Inc()

	l.mu.Lock()
	l.snapNext = next
	if l.sinceSnap = l.nextSeq - next; l.sinceSnap < 0 {
		l.sinceSnap = 0
	}
	active := l.segPath
	l.mu.Unlock()
	return l.compact(active)
}

// compact keeps the latest two snapshots and removes segments whose
// entire record range lies below the OLDER retained snapshot (never the
// active segment). Compacting to the older snapshot — not the one just
// written — is what makes the two-snapshot retention real: if the newest
// snapshot turns out unreadable at recovery, the previous snapshot plus
// the still-present segments rebuild the same state. A compaction pin
// (SetCompactPin) additionally keeps every segment holding records a
// replication follower has not shipped yet: segment i's records all lie
// below segment i+1's first ID, so it is removable only when that bound
// clears both the snapshot horizon and the pin.
func (l *Log) compact(active string) error {
	snaps, nums, err := listNumbered(snapDir(l.dir), "snap-", ".snap")
	if err != nil {
		return err
	}
	for i := 0; i+2 < len(snaps); i++ {
		if err := os.Remove(snaps[i]); err != nil {
			return err
		}
	}
	horizon := 0 // only one snapshot: it has no fallback, delete nothing
	if n := len(nums); n >= 2 {
		horizon = nums[n-2]
	}
	if pin := l.compactPin(); pin < horizon {
		horizon = pin
	}
	segs, firsts, err := listNumbered(walDir(l.dir), "seg-", ".log")
	if err != nil {
		return err
	}
	for i := 0; i+1 < len(segs); i++ {
		if firsts[i+1] <= horizon && segs[i] != active {
			if err := os.Remove(segs[i]); err != nil {
				return err
			}
			mCompacted.Inc()
		}
	}
	return nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// loadLatestSnapshot restores the newest readable snapshot into the
// fresh store, skipping unreadable ones (a torn write during a crash).
func (l *Log) loadLatestSnapshot(rec *Recovery) error {
	snaps, _, err := listNumbered(snapDir(l.dir), "snap-", ".snap")
	if err != nil {
		return err
	}
	for i := len(snaps) - 1; i >= 0; i-- {
		base, next, ins, err := readSnapshot(snaps[i], l.opts.replayWorkers())
		if err != nil {
			// Unreadable snapshot: fall back to the previous one (the
			// segments below it still exist until a snapshot succeeds).
			continue
		}
		if err := l.st.Restore(base, next, ins); err != nil {
			return fmt.Errorf("wal: snapshot %s: %v", snaps[i], err)
		}
		rec.SnapshotNext = next
		rec.SnapshotLive = len(ins)
		return nil
	}
	return nil
}

func readSnapshot(path string, workers int) (base, next int, ins []event.Instance, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, nil, err
	}
	if len(data) < len(snapMagic) || string(data[:len(snapMagic)]) != snapMagic {
		return 0, 0, nil, fmt.Errorf("wal: %s: bad snapshot magic", path)
	}
	rest := data[len(snapMagic):]
	hdr, rest, ok := readFrame(rest)
	if !ok {
		return 0, 0, nil, fmt.Errorf("wal: %s: torn snapshot header", path)
	}
	b, sz := binary.Uvarint(hdr)
	if sz <= 0 {
		return 0, 0, nil, fmt.Errorf("wal: %s: bad snapshot base", path)
	}
	hdr = hdr[sz:]
	n, sz := binary.Uvarint(hdr)
	if sz <= 0 {
		return 0, 0, nil, fmt.Errorf("wal: %s: bad snapshot next", path)
	}
	hdr = hdr[sz:]
	count, sz := binary.Uvarint(hdr)
	if sz <= 0 {
		return 0, 0, nil, fmt.Errorf("wal: %s: bad snapshot count", path)
	}
	base, next = int(b), int(n)
	// Frame scan first, parallel decode second — same staging as segment
	// replay, same any-worker-count determinism.
	frames := make([][]byte, 0, count)
	for i := uint64(0); i < count; i++ {
		payload, r2, ok := readFrame(rest)
		if !ok {
			return 0, 0, nil, fmt.Errorf("wal: %s: torn snapshot record %d/%d", path, i, count)
		}
		frames = append(frames, payload)
		rest = r2
	}
	ins = make([]event.Instance, len(frames))
	err = parallelIndexed(len(frames), workers, func(i int) error {
		payload := frames[i]
		id, sz := binary.Uvarint(payload)
		if sz <= 0 {
			return fmt.Errorf("wal: %s: bad snapshot record ID", path)
		}
		in, err := decodeInstance(payload[sz:])
		if err != nil {
			return fmt.Errorf("wal: %s: snapshot record %d: %v", path, i, err)
		}
		in.ID = int(id)
		ins[i] = in
		return nil
	})
	if err != nil {
		return 0, 0, nil, err
	}
	return base, next, ins, nil
}
