package collector

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"grca/internal/event"
	"grca/internal/locus"
)

// baseline is a rolling-median reference for one measured quantity on one
// measurement pair. Deviations are judged against the median of the last
// window samples, which tracks slow drift while staying robust to the
// outliers we are trying to detect.
type baseline struct {
	window []float64
	cap    int
}

func newBaseline(cap int) *baseline { return &baseline{cap: cap} }

// observe records a sample and returns the median *before* the sample was
// added plus whether enough history exists to judge deviations.
func (b *baseline) observe(v float64) (median float64, ready bool) {
	median, ready = b.median()
	b.window = append(b.window, v)
	if len(b.window) > b.cap {
		b.window = b.window[1:]
	}
	return median, ready
}

func (b *baseline) median() (float64, bool) {
	n := len(b.window)
	if n < 3 {
		return 0, false
	}
	s := append([]float64(nil), b.window...)
	sort.Float64s(s)
	if n%2 == 1 {
		return s[n/2], true
	}
	return (s[n/2-1] + s[n/2]) / 2, true
}

const baselineWindow = 24 // two hours of 5-minute samples

// parsePerfMon ingests the in-network active measurement feed (probe
// traffic between PoP pairs), one CSV row per pair per 5-minute bin:
//
//	epoch,ingress,egress,delay_ms,loss_pct,tput_mbps
//	1262304000,nyc-per1,chi-per1,23.1,0.0,940
//
// The detectors compare each sample against the pair's rolling median and
// emit the Table I events "In-network delay increase" (delay above
// DelayFactor × median), "In-network loss increase" (loss above median +
// LossDelta points), and "In-network throughput drop" (throughput below
// TputFactor × median).
func (c *Collector) parsePerfMon(line string) error {
	parts := strings.Split(line, ",")
	if len(parts) != 6 {
		return fmt.Errorf("want 6 fields, got %d", len(parts))
	}
	epoch, err := strconv.ParseInt(parts[0], 10, 64)
	if err != nil {
		return fmt.Errorf("bad epoch %q", parts[0])
	}
	start := time.Unix(epoch, 0).UTC()
	end := start.Add(5 * time.Minute)
	ingress, err := c.Aliases.Canonical(parts[1])
	if err != nil {
		return err
	}
	egress, err := c.Aliases.Canonical(parts[2])
	if err != nil {
		return err
	}
	var vals [3]float64
	for i := 0; i < 3; i++ {
		v, err := strconv.ParseFloat(parts[3+i], 64)
		if err != nil {
			return fmt.Errorf("bad measurement %q", parts[3+i])
		}
		vals[i] = v
	}
	delay, loss, tput := vals[0], vals[1], vals[2]
	loc := locus.Between(locus.IngressEgress, ingress, egress)
	key := loc.Key()

	c.judge(key+"/delay", delay, func(med float64) bool {
		return delay > med*c.Thresholds.DelayFactor
	}, func() {
		c.add(event.DelayIncrease, start, end, loc, map[string]string{"delay_ms": parts[3]})
	})
	c.judge(key+"/loss", loss, func(med float64) bool {
		return loss > med+c.Thresholds.LossDelta
	}, func() {
		c.add(event.LossIncrease, start, end, loc, map[string]string{"loss_pct": parts[4]})
	})
	c.judge(key+"/tput", tput, func(med float64) bool {
		return med > 0 && tput < med*c.Thresholds.TputFactor
	}, func() {
		c.add(event.ThroughputDrop, start, end, loc, map[string]string{"tput_mbps": parts[5]})
	})
	return nil
}

// judge runs one rolling-baseline detector.
func (c *Collector) judge(key string, v float64, breach func(median float64) bool, emit func()) {
	b := c.perfBase[key]
	if b == nil {
		b = newBaseline(baselineWindow)
		c.perfBase[key] = b
	}
	if med, ready := b.observe(v); ready && breach(med) {
		emit()
	}
}

// judgeKey is judge for the zero-copy path: the key arrives as bytes and
// is only copied to a string when a new baseline is created. Both paths
// share c.perfBase, so a feed may switch paths mid-stream without
// resetting its baselines.
func (c *Collector) judgeKey(key []byte, v float64, breach func(median float64) bool, emit func()) {
	b := c.perfBase[string(key)] // no-alloc map probe
	if b == nil {
		b = newBaseline(baselineWindow)
		c.perfBase[string(key)] = b
	}
	if med, ready := b.observe(v); ready && breach(med) {
		emit()
	}
}

// parseKeynote ingests the CDN measurement agents' feed (the paper's
// Keynote data), one CSV row per (server, agent) measurement:
//
//	epoch,server,agent,rtt_ms,tput_kbps
//	1262304000,cdn-nyc-s1,agent-1,41.0,8800
//
// Detectors emit "CDN round trip time increase" (RTT above DelayFactor ×
// rolling median) and "CDN end-to-end throughput drop" (below TputFactor ×
// median) at the server:client location.
func (c *Collector) parseKeynote(line string) error {
	parts := strings.Split(line, ",")
	if len(parts) != 5 {
		return fmt.Errorf("want 5 fields, got %d", len(parts))
	}
	epoch, err := strconv.ParseInt(parts[0], 10, 64)
	if err != nil {
		return fmt.Errorf("bad epoch %q", parts[0])
	}
	start := time.Unix(epoch, 0).UTC()
	end := start.Add(5 * time.Minute)
	server, agent := parts[1], parts[2]
	rtt, err := strconv.ParseFloat(parts[3], 64)
	if err != nil {
		return fmt.Errorf("bad rtt %q", parts[3])
	}
	tput, err := strconv.ParseFloat(parts[4], 64)
	if err != nil {
		return fmt.Errorf("bad throughput %q", parts[4])
	}
	loc := locus.Between(locus.ServerClient, server, agent)
	key := loc.Key()

	b := c.keyBase[key+"/rtt"]
	if b == nil {
		b = newBaseline(baselineWindow)
		c.keyBase[key+"/rtt"] = b
	}
	if med, ready := b.observe(rtt); ready && rtt > med*c.Thresholds.DelayFactor {
		c.add(event.CDNRTTIncrease, start, end, loc, map[string]string{"rtt_ms": parts[3]})
	}
	b = c.keyBase[key+"/tput"]
	if b == nil {
		b = newBaseline(baselineWindow)
		c.keyBase[key+"/tput"] = b
	}
	if med, ready := b.observe(tput); ready && med > 0 && tput < med*c.Thresholds.TputFactor {
		c.add(event.CDNThroughputDrop, start, end, loc, map[string]string{"tput_kbps": parts[4]})
	}
	return nil
}

// parseServerLog ingests CDN server/node logs:
//
//	epoch,load,cdn-nyc-s1,97          (server load percent)
//	epoch,policy,cdn-nyc,rebalance-7  (assignment policy change at a node)
//
// High load yields "CDN server issue" at the server; a policy record
// yields "CDN assignment policy change" at the node.
func (c *Collector) parseServerLog(line string) error {
	parts := strings.Split(line, ",")
	if len(parts) != 4 {
		return fmt.Errorf("want 4 fields, got %d", len(parts))
	}
	epoch, err := strconv.ParseInt(parts[0], 10, 64)
	if err != nil {
		return fmt.Errorf("bad epoch %q", parts[0])
	}
	at := time.Unix(epoch, 0).UTC()
	switch parts[1] {
	case "load":
		load, err := strconv.ParseFloat(parts[3], 64)
		if err != nil {
			return fmt.Errorf("bad load %q", parts[3])
		}
		if load >= c.Thresholds.ServerLoadPct {
			c.add(event.CDNServerIssue, at, at.Add(5*time.Minute),
				locus.At(locus.Server, parts[2]), map[string]string{"load": parts[3]})
		}
	case "policy":
		c.add(event.CDNPolicyChange, at, at,
			locus.At(locus.Server, parts[2]), map[string]string{"policy": parts[3]})
	default:
		return fmt.Errorf("unknown server log record %q", parts[1])
	}
	return nil
}
