// Package collector implements the G-RCA Data Collector (paper §II-A): it
// ingests raw records from heterogeneous data sources — syslog in
// device-local time, SNMP samples keyed by FQDN, OSPF and BGP monitor
// feeds keyed by addresses, TACACS command logs, layer-1 device logs,
// performance monitors — normalizes naming conventions, time zones, and
// identifiers as data is ingested, runs the signature detectors of the
// event Knowledge Library, and stores the resulting event instances so the
// RCA engine can correlate them.
//
// Raw line formats per source are documented on each Ingest* method.
// Malformed lines never abort ingestion: they are counted and sampled in
// Malformed, mirroring how an operational pipeline must survive dirty
// feeds.
package collector

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/netip"
	"sort"
	"strconv"
	"strings"
	"time"

	"grca/internal/bgp"
	"grca/internal/event"
	"grca/internal/locus"
	"grca/internal/netmodel"
	"grca/internal/obs"
	"grca/internal/ospf"
	"grca/internal/store"
)

// Data Collector metrics: the paper's collector normalizes ~600
// heterogeneous feeds in real time, so raw-line throughput, parse failure
// rate, and normalized-event yield are its health signals.
var (
	mLines       = obs.GetCounter("collector.lines")
	mParsed      = obs.GetCounter("collector.parsed")
	mMalformed   = obs.GetCounter("collector.malformed")
	mEvents      = obs.GetCounter("collector.events")
	mQuarantined = obs.GetCounter("collector.quarantined")
)

// Source names accepted by Ingest.
const (
	SourceSyslog   = "syslog"
	SourceSNMP     = "snmp"
	SourceOSPFMon  = "ospfmon"
	SourceBGPMon   = "bgpmon"
	SourceTACACS   = "tacacs"
	SourceWorkflow = "workflow"
	SourceLayer1   = "layer1"
	SourcePerfMon  = "perfmon"
	SourceKeynote  = "keynote"
	SourceServer   = "serverlog"
)

// Thresholds configures the detector thresholds of the common event
// definitions (Table I). Zero values take the Table I defaults; an RCA
// application may redefine them (the paper's 80% vs 90% congestion
// example).
type Thresholds struct {
	CPUAveragePct  float64       // CPU high (average), default 80
	LinkUtilPct    float64       // Link congestion alarm, default 80
	LinkErrorCount float64       // Link loss alarm, default 100
	ServerLoadPct  float64       // CDN server issue, default 90
	FlapWindow     time.Duration // max down→up gap treated as a flap, default 10m
	// DelayFactor / TputFactor / LossDelta flag performance deviations
	// against the rolling per-pair baseline. Defaults 1.5, 0.7, 0.5.
	DelayFactor float64
	TputFactor  float64
	LossDelta   float64
}

func (t *Thresholds) defaults() {
	if t.CPUAveragePct == 0 {
		t.CPUAveragePct = 80
	}
	if t.LinkUtilPct == 0 {
		t.LinkUtilPct = 80
	}
	if t.LinkErrorCount == 0 {
		t.LinkErrorCount = 100
	}
	if t.ServerLoadPct == 0 {
		t.ServerLoadPct = 90
	}
	if t.FlapWindow == 0 {
		t.FlapWindow = 10 * time.Minute
	}
	if t.DelayFactor == 0 {
		t.DelayFactor = 1.5
	}
	if t.TputFactor == 0 {
		t.TputFactor = 0.7
	}
	if t.LossDelta == 0 {
		t.LossDelta = 0.5
	}
}

// ErrorBudget bounds how much malformed input a single source may deliver
// before the collector quarantines it: stops consuming the feed, records
// the reason, and moves on to the other sources. Without a budget, one
// corrupted feed among the paper's ~600 floods the malformed tally and
// burns ingest time line by line; aborting the whole run for it would be
// worse. The zero value takes the documented defaults.
type ErrorBudget struct {
	// MinLines is how many raw lines a source must deliver before its
	// drop rate is judged (default 200) — early garbage on a feed that
	// recovers should not condemn it.
	MinLines int
	// MaxDropRate is the malformed fraction beyond which the source is
	// quarantined (default 0.5). A value ≥ 1 disables rate quarantine
	// (scanner failures still quarantine — they are unrecoverable).
	MaxDropRate float64
}

func (b *ErrorBudget) defaults() {
	if b.MinLines == 0 {
		b.MinLines = 200
	}
	if b.MaxDropRate == 0 {
		b.MaxDropRate = 0.5
	}
}

// Malformed summarizes rejected raw lines.
type Malformed struct {
	Count   int
	Samples []string // first few offending lines with reasons
}

func (m *Malformed) add(source, line string, err error) {
	m.Count++
	if len(m.Samples) < 20 {
		m.Samples = append(m.Samples, fmt.Sprintf("%s: %q: %v", source, line, err))
	}
}

// SourceStats tallies one feed's ingestion: raw lines seen (comments and
// blanks excluded), lines parsed, lines rejected as malformed, and
// normalized event instances the feed produced.
type SourceStats struct {
	Lines     int
	Parsed    int
	Malformed int
	Events    int
	// Quarantine is non-empty when the source tripped its error budget or
	// failed at the scanner; it records why and implies the tail of the
	// feed was skipped.
	Quarantine string
}

// Quarantined reports whether the source was cut off mid-feed.
func (s SourceStats) Quarantined() bool { return s.Quarantine != "" }

// DropRate is the fraction of raw lines rejected as malformed.
func (s SourceStats) DropRate() float64 {
	if s.Lines == 0 {
		return 0
	}
	return float64(s.Malformed) / float64(s.Lines)
}

// SourceSummary is one row of an IngestSummary.
type SourceSummary struct {
	Source string
	SourceStats
}

// IngestSummary is the per-source ingestion record returned by Summary:
// what each feed delivered, what was dropped, and what it yielded — so a
// front end can warn when a feed's drop rate is nonzero instead of
// discarding bad lines silently.
type IngestSummary struct {
	Sources []SourceSummary // sorted by source name
	Totals  SourceStats
}

// Quarantined lists the names of sources cut off mid-feed, sorted.
func (s IngestSummary) Quarantined() []string {
	var out []string
	for _, src := range s.Sources {
		if src.Quarantined() {
			out = append(out, src.Source)
		}
	}
	return out
}

// Summary reports per-source ingestion statistics. Events emitted by
// Finalize's pairing passes (flaps, PIM adjacencies, router cost in/out)
// are attributed to the source whose transitions fed them.
func (c *Collector) Summary() IngestSummary {
	var out IngestSummary
	names := make([]string, 0, len(c.Sources))
	for name := range c.Sources {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := *c.Sources[name]
		out.Sources = append(out.Sources, SourceSummary{Source: name, SourceStats: s})
		out.Totals.Lines += s.Lines
		out.Totals.Parsed += s.Parsed
		out.Totals.Malformed += s.Malformed
		out.Totals.Events += s.Events
	}
	return out
}

// stats returns the per-source tally, creating it on first use.
func (c *Collector) stats(source string) *SourceStats {
	s := c.Sources[source]
	if s == nil {
		s = &SourceStats{}
		c.Sources[source] = s
	}
	return s
}

// transition is a buffered up/down edge awaiting flap pairing.
type transition struct {
	at   time.Time
	loc  locus.Location
	up   bool
	attr map[string]string
}

// Collector binds a parsed topology to an event store and routing
// simulations. Create with New, call Ingest per feed, then Finalize once.
type Collector struct {
	Topo    *netmodel.Topology
	Aliases *netmodel.AliasTable
	Store   store.Store
	OSPF    *ospf.Sim
	BGP     *bgp.Sim

	// Year anchors syslog timestamps, which carry no year.
	Year int
	// WindowStart/WindowEnd, when set, bound the collection period:
	// syslog wall times are assigned the candidate year (Year−1, Year, or
	// Year+1) that lands inside the window. This resolves the classic
	// RFC 3164 year-wrap: a device in a western zone stamps the first
	// hours of a January 1st collection as December 31st.
	WindowStart, WindowEnd time.Time
	// Thresholds configures the detectors.
	Thresholds Thresholds
	// Budget is the per-source malformed-line tolerance; see ErrorBudget.
	Budget ErrorBudget
	// Malformed accumulates rejected input lines.
	Malformed Malformed
	// Sources tallies per-feed ingestion (lines, parsed, malformed,
	// events emitted); read it through Summary.
	Sources map[string]*SourceStats
	// EmitGenericSignatures controls whether every syslog mnemonic and
	// workflow action also produces a generic per-signature event
	// ("syslog:<MNEMONIC>", "workflow:<action>") at router granularity.
	// The correlation-mining study of §IV-B requires these candidate
	// series; bulk RCA runs can leave them off.
	EmitGenericSignatures bool
	// LegacyParsers disables the zero-copy fast path (fastpath.go) and
	// runs every feed through the reference string parsers alone. The
	// fast path behaves identically (FuzzParserParity is the gate); the
	// toggle exists to isolate a suspected fast-path bug in production
	// and as the reference side of the differential tests.
	LegacyParsers bool

	tzCache map[string]*time.Location
	// scr is the pooled fast-path working memory, held only for the
	// duration of one Ingest call.
	scr *scratch
	// addrCache / prefixCache memoize netip parses of repeated monitor-
	// feed fields (loopbacks, interface addresses, route prefixes).
	addrCache   map[string]netip.Addr
	prefixCache map[string]netip.Prefix
	// curSource names the feed being ingested, so events emitted by the
	// parsers are attributed to it; Finalize's pairing passes attribute
	// to the buffered transitions' originating source instead.
	curSource string

	// Buffers drained by Finalize.
	ifaceTrans map[locus.Location][]transition
	protoTrans map[locus.Location][]transition
	bgpTrans   map[locus.Location][]transition
	pimDown    []transition // PIM adjacency losses (paired opportunistically)
	pimUp      map[locus.Location][]time.Time
	costOut    map[string][]ospf.WeightChange // router → cost-out changes (router cost in/out inference)
	costIn     map[string][]ospf.WeightChange

	perfBase map[string]*baseline
	keyBase  map[string]*baseline

	finalized bool
}

// New builds a collector over the parsed topology. The OSPF and BGP
// simulations start empty and are populated by the respective monitor
// feeds, exactly as the paper reconstructs routing state from proactively
// collected monitoring data.
func New(topo *netmodel.Topology, st store.Store, year int) *Collector {
	c := &Collector{
		Topo:       topo,
		Aliases:    netmodel.NewAliasTable(topo),
		Store:      st,
		Year:       year,
		Sources:    map[string]*SourceStats{},
		tzCache:    map[string]*time.Location{},
		ifaceTrans: map[locus.Location][]transition{},
		protoTrans: map[locus.Location][]transition{},
		bgpTrans:   map[locus.Location][]transition{},
		pimUp:      map[locus.Location][]time.Time{},
		costOut:    map[string][]ospf.WeightChange{},
		costIn:     map[string][]ospf.WeightChange{},
		perfBase:   map[string]*baseline{},
		keyBase:    map[string]*baseline{},
	}
	c.Thresholds.defaults()
	c.OSPF = ospf.New(topo, nil)
	c.BGP = bgp.New(c.OSPF)
	return c
}

// Ingest parses one feed. Unknown sources are an error; malformed lines
// within a known feed are tallied in Malformed and skipped. A source that
// exhausts its error budget — or whose scanner fails outright (an absurd
// line length, a read error) — is quarantined rather than aborting the
// run: its remaining input is dropped, the reason lands in its
// SourceStats, and ingestion of the other feeds continues.
func (c *Collector) Ingest(source string, r io.Reader) error {
	if c.finalized {
		return fmt.Errorf("collector: Ingest after Finalize")
	}
	var parse func(line string) error
	switch source {
	case SourceSyslog:
		parse = c.parseSyslog
	case SourceSNMP:
		parse = c.parseSNMP
	case SourceOSPFMon:
		parse = c.parseOSPFMon
	case SourceBGPMon:
		parse = c.parseBGPMon
	case SourceTACACS:
		parse = c.parseTACACS
	case SourceWorkflow:
		parse = c.parseWorkflow
	case SourceLayer1:
		parse = c.parseLayer1
	case SourcePerfMon:
		parse = c.parsePerfMon
	case SourceKeynote:
		parse = c.parseKeynote
	case SourceServer:
		parse = c.parseServerLog
	default:
		return fmt.Errorf("collector: unknown source %q", source)
	}
	budget := c.Budget
	budget.defaults()
	stats := c.stats(source)
	fast := c.fastParser(source)
	c.curSource = source
	scr := scratchPool.Get().(*scratch)
	scr.reset()
	c.scr = scr
	defer func() {
		c.curSource = ""
		c.scr = nil
		// Keep pooled memory bounded: an unusually large feed should not
		// pin its arena for the life of the process.
		if cap(scr.arena) > 8<<20 {
			scr.arena = nil
		}
		if cap(scr.spans) > 1<<16 {
			scr.spans = nil
		}
		scratchPool.Put(scr)
	}()

	// record applies the error-budget accounting for one consumed line;
	// it reports false once the source is quarantined. line is lazy so
	// the fast path only materializes a string on the malformed path.
	record := func(err error, line func() string) bool {
		if err != nil {
			c.Malformed.add(source, line(), err)
			stats.Malformed++
			mMalformed.Inc()
			if stats.Lines >= budget.MinLines && float64(stats.Malformed) > budget.MaxDropRate*float64(stats.Lines) {
				stats.Quarantine = fmt.Sprintf("error budget exhausted: %d/%d lines malformed (> %.0f%%)",
					stats.Malformed, stats.Lines, 100*budget.MaxDropRate)
				mQuarantined.Inc()
				return false
			}
		} else {
			stats.Parsed++
			mParsed.Inc()
		}
		return true
	}
	// consume runs one raw line through the reference parser.
	consume := func(line string) bool {
		stats.Lines++
		mLines.Inc()
		return record(parse(line), func() string { return line })
	}
	// consumeBytes runs one raw line through the zero-copy parser,
	// falling back to the reference parser whenever it declines.
	consumeBytes := func(line []byte) bool {
		stats.Lines++
		mLines.Inc()
		handled, err := fast(line)
		if handled {
			mFastLines.Inc()
		} else {
			mFastFallback.Inc()
			err = parse(string(line))
		}
		return record(err, func() string { return string(line) })
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(scr.scanbuf, 4*1024*1024)

	if stamp := lineStamp[source]; stamp != nil {
		// Order-sensitive feed: its parser replays a state machine (OSPF
		// weights, BGP RIB) or a rolling baseline, so records delivered out
		// of time order — multi-threaded relays, retried batches — would
		// corrupt reconstructed state. Buffer the feed and restore record
		// order before parsing. Lines whose timestamp cannot be read sort
		// to the front, where the parser tallies them as malformed.
		if fast != nil {
			// Zero-copy variant: lines land in the pooled arena and are
			// sorted as spans; the stamps fall back to the reference
			// stamp readers only on unusual forms.
			fstamp := fastLineStamp(source)
			for sc.Scan() {
				b := sc.Bytes()
				if len(b) == 0 || b[0] == '#' {
					continue
				}
				scr.spans = append(scr.spans, lineSpan{off: len(scr.arena), n: len(b), at: fstamp(b, stamp)})
				scr.arena = append(scr.arena, b...)
			}
			sort.SliceStable(scr.spans, func(i, j int) bool { return scr.spans[i].at.Before(scr.spans[j].at) })
			for _, sp := range scr.spans {
				if !consumeBytes(scr.arena[sp.off : sp.off+sp.n]) {
					return nil
				}
			}
		} else {
			type stamped struct {
				at   time.Time
				line string
			}
			var lines []stamped
			for sc.Scan() {
				line := sc.Text()
				if line == "" || line[0] == '#' {
					continue
				}
				at, _ := stamp(line)
				lines = append(lines, stamped{at: at, line: line})
			}
			sort.SliceStable(lines, func(i, j int) bool { return lines[i].at.Before(lines[j].at) })
			for _, l := range lines {
				if !consume(l.line) {
					return nil
				}
			}
		}
	} else if fast != nil {
		for sc.Scan() {
			line := sc.Bytes()
			if len(line) == 0 || line[0] == '#' {
				continue
			}
			if !consumeBytes(line) {
				return nil
			}
		}
	} else {
		for sc.Scan() {
			line := sc.Text()
			if line == "" || line[0] == '#' {
				continue
			}
			if !consume(line) {
				return nil
			}
		}
	}
	if err := sc.Err(); err != nil {
		stats.Quarantine = fmt.Sprintf("scan failed: %v", err)
		mQuarantined.Inc()
	}
	return nil
}

// fastLineStamp returns the zero-copy stamp reader for an order-restored
// source. The reader receives the reference stamp function and falls
// back to it (via one string conversion) on any form the byte scanner is
// not certain about, so sort keys — and therefore store IDs — are
// identical on both paths.
func fastLineStamp(source string) func(line []byte, ref func(string) (time.Time, bool)) time.Time {
	if source == SourceOSPFMon {
		return func(line []byte, ref func(string) (time.Time, bool)) time.Time {
			i := bytes.IndexByte(line, ' ')
			if i < 0 {
				i = len(line)
			}
			if at, ok := parseRFC3339(line[:i]); ok {
				return at
			}
			at, _ := ref(string(line))
			return at
		}
	}
	sep := byte(',')
	if source == SourceBGPMon {
		sep = '|'
	}
	return func(line []byte, ref func(string) (time.Time, bool)) time.Time {
		i := bytes.IndexByte(line, sep)
		if i < 0 {
			return time.Time{}
		}
		secs, ok := parseInt64(line[:i])
		if !ok {
			return time.Time{}
		}
		return time.Unix(secs, 0).UTC()
	}
}

// lineStamp maps each centrally-stamped, order-sensitive source to a
// function extracting its record timestamp, used by Ingest to restore
// record order before parsing. Syslog, TACACS, workflow, and layer-1
// records stay in arrival order: they carry device-local or zoned stamps
// and feed point events or Finalize-sorted pairing buffers, which tolerate
// disorder by construction.
var lineStamp = map[string]func(string) (time.Time, bool){
	SourceOSPFMon: stampRFC3339Field,
	SourceBGPMon:  stampEpochUntil('|'),
	SourceSNMP:    stampEpochUntil(','),
	SourcePerfMon: stampEpochUntil(','),
	SourceKeynote: stampEpochUntil(','),
	SourceServer:  stampEpochUntil(','),
}

// stampRFC3339Field reads a leading RFC 3339 timestamp field.
func stampRFC3339Field(line string) (time.Time, bool) {
	i := strings.IndexByte(line, ' ')
	if i < 0 {
		i = len(line)
	}
	at, err := time.Parse(time.RFC3339, line[:i])
	if err != nil {
		return time.Time{}, false
	}
	return at, true
}

// stampEpochUntil reads a leading Unix-seconds field ended by sep.
func stampEpochUntil(sep byte) func(string) (time.Time, bool) {
	return func(line string) (time.Time, bool) {
		i := strings.IndexByte(line, sep)
		if i < 0 {
			return time.Time{}, false
		}
		secs, err := strconv.ParseInt(line[:i], 10, 64)
		if err != nil {
			return time.Time{}, false
		}
		return time.Unix(secs, 0).UTC(), true
	}
}

// add stores an event instance, crediting the feed being ingested.
// Events emitted outside any Ingest call (deployment materialization,
// unattributed pairing) land under the pseudo-source "derived".
func (c *Collector) add(name string, start, end time.Time, loc locus.Location, attrs map[string]string) {
	source := c.curSource
	if source == "" {
		source = "derived"
	}
	c.stats(source).Events++
	mEvents.Inc()
	c.Store.Add(event.Instance{Name: name, Start: start, End: end, Loc: loc, Attrs: attrs})
}

// Finalize drains the pairing buffers: flap detection over the buffered
// up/down transitions, router cost in/out inference over the cost-change
// groups, and PIM adjacency pairing. It must be called exactly once after
// all feeds are ingested.
func (c *Collector) Finalize() error {
	if c.finalized {
		return fmt.Errorf("collector: Finalize called twice")
	}
	c.finalized = true
	// Paired events derive from buffered transitions: the up/down edges
	// came from syslog, the cost-change groups from the OSPF monitor.
	c.curSource = SourceSyslog
	c.pairTransitions(c.ifaceTrans, event.InterfaceDown, event.InterfaceUp, event.InterfaceFlap)
	c.pairTransitions(c.protoTrans, event.LineProtoDown, event.LineProtoUp, event.LineProtoFlap)
	c.pairBGP()
	c.pairPIM()
	c.curSource = SourceOSPFMon
	c.inferRouterCost()
	c.curSource = ""
	return nil
}

// pairTransitions implements the down/up/flap signature family: every down
// edge yields a down event, every up edge an up event, and a down followed
// by an up on the same location within FlapWindow additionally yields a
// flap spanning the pair.
func (c *Collector) pairTransitions(buf map[locus.Location][]transition, downName, upName, flapName string) {
	for _, loc := range sortedLocs(buf) {
		trans := buf[loc]
		sort.SliceStable(trans, func(i, j int) bool { return trans[i].at.Before(trans[j].at) })
		var pendingDown *transition
		for i := range trans {
			tr := &trans[i]
			if tr.up {
				c.add(upName, tr.at, tr.at, loc, tr.attr)
				if pendingDown != nil && tr.at.Sub(pendingDown.at) <= c.Thresholds.FlapWindow {
					c.add(flapName, pendingDown.at, tr.at, loc, tr.attr)
				}
				pendingDown = nil
			} else {
				c.add(downName, tr.at, tr.at, loc, tr.attr)
				pendingDown = tr
			}
		}
	}
}

// sortedLocs returns a pairing buffer's locations in key order. Finalize
// emits paired events per location; iterating the buffer maps directly
// would assign store IDs in map order, making two runs over the same
// feeds (batch vs. serve replay, restart recovery) disagree on IDs.
func sortedLocs[V any](buf map[locus.Location]V) []locus.Location {
	locs := make([]locus.Location, 0, len(buf))
	for loc := range buf {
		locs = append(locs, loc)
	}
	sort.Slice(locs, func(i, j int) bool { return locs[i].Key() < locs[j].Key() })
	return locs
}

// pairBGP emits an eBGP flap for every ADJCHANGE Down→Up pair (a session
// that goes down and comes back; the unit of Table IV).
func (c *Collector) pairBGP() {
	for _, loc := range sortedLocs(c.bgpTrans) {
		trans := c.bgpTrans[loc]
		sort.SliceStable(trans, func(i, j int) bool { return trans[i].at.Before(trans[j].at) })
		var pendingDown *transition
		for i := range trans {
			tr := &trans[i]
			if tr.up {
				if pendingDown != nil && tr.at.Sub(pendingDown.at) <= c.Thresholds.FlapWindow {
					c.add(event.EBGPFlap, pendingDown.at, tr.at, loc, pendingDown.attr)
				}
				pendingDown = nil
			} else {
				pendingDown = tr
			}
		}
	}
}

// pairPIM emits a PIM Neighbor Adjacency Change for every DOWN edge,
// closed by the next UP when one follows within the flap window.
func (c *Collector) pairPIM() {
	sort.SliceStable(c.pimDown, func(i, j int) bool { return c.pimDown[i].at.Before(c.pimDown[j].at) })
	for _, ups := range c.pimUp {
		sort.Slice(ups, func(i, j int) bool { return ups[i].Before(ups[j]) })
	}
	for _, down := range c.pimDown {
		end := down.at
		ups := c.pimUp[down.loc]
		for _, up := range ups {
			if !up.Before(down.at) && up.Sub(down.at) <= c.Thresholds.FlapWindow {
				end = up
				break
			}
		}
		name := event.PIMAdjacencyChange
		if down.attr["uplink"] == "true" {
			name = event.PIMUplinkAdjacencyChange
		}
		c.add(name, down.at, end, down.loc, down.attr)
	}
}

// localTime resolves a device's syslog clock zone from its parsed
// configuration, caching time.LoadLocation lookups.
func (c *Collector) location(router string) *time.Location {
	r, ok := c.Topo.Routers[router]
	if !ok || r.TZName == "" {
		return time.UTC
	}
	if loc, ok := c.tzCache[r.TZName]; ok {
		return loc
	}
	loc, err := time.LoadLocation(r.TZName)
	if err != nil {
		loc = time.UTC
	}
	c.tzCache[r.TZName] = loc
	return loc
}
