package collector

import (
	"net/netip"
	"strconv"
	"strings"
	"testing"
	"time"

	"grca/internal/event"
	"grca/internal/locus"
	"grca/internal/store"
	"grca/internal/testnet"
)

func newCollector(t *testing.T) (*Collector, store.Store) {
	t.Helper()
	n := testnet.Build(t.Fatalf)
	st := store.New()
	return New(n.Topo, st, 2010), st
}

func ingest(t *testing.T, c *Collector, source, text string) {
	t.Helper()
	if err := c.Ingest(source, strings.NewReader(text)); err != nil {
		t.Fatal(err)
	}
}

func finalize(t *testing.T, c *Collector) {
	t.Helper()
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
}

func TestSyslogTimezoneNormalization(t *testing.T) {
	c, st := newCollector(t)
	// chi-per1 stamps in America/Chicago (CST = UTC-6 in January).
	ingest(t, c, SourceSyslog,
		"Jan  2 06:00:00 chi-per1 %SYS-5-RESTART: System restarted\n")
	// nyc-per1 stamps in America/New_York (EST = UTC-5), via FQDN alias
	// and upper case.
	ingest(t, c, SourceSyslog,
		"Jan  2 07:00:00 NYC-PER1.NET.EXAMPLE.COM %SYS-5-RESTART: System restarted\n")
	finalize(t, c)

	got := st.All(event.RouterReboot)
	if len(got) != 2 {
		t.Fatalf("reboots = %d", len(got))
	}
	want := time.Date(2010, 1, 2, 12, 0, 0, 0, time.UTC)
	for _, in := range got {
		if !in.Start.Equal(want) {
			t.Errorf("reboot at %v on %s, want %v (normalized)", in.Start, in.Loc, want)
		}
	}
	if c.Malformed.Count != 0 {
		t.Errorf("malformed = %+v", c.Malformed)
	}
}

// TestSyslogYearWrap is the RFC 3164 boundary case: a UTC instant just
// after midnight on January 1st is stamped December 31st by a device in a
// western zone; with the collection window configured, the collector must
// assign the *previous* year rather than jumping twelve months forward.
func TestSyslogYearWrap(t *testing.T) {
	c, st := newCollector(t)
	c.WindowStart = time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	c.WindowEnd = c.WindowStart.Add(7 * 24 * time.Hour)
	// chi-per1 is in America/Chicago (UTC-6 in winter): UTC 2010-01-01
	// 02:00 is local 2009-12-31 20:00.
	ingest(t, c, SourceSyslog,
		"Dec 31 20:00:00 chi-per1 %SYS-5-RESTART: System restarted\n")
	finalize(t, c)
	got := st.All(event.RouterReboot)
	if len(got) != 1 {
		t.Fatalf("reboots = %d", len(got))
	}
	want := time.Date(2010, 1, 1, 2, 0, 0, 0, time.UTC)
	if !got[0].Start.Equal(want) {
		t.Errorf("reboot at %v, want %v (year-wrap resolved)", got[0].Start, want)
	}
	// Without a window, the configured year is taken at face value.
	c2, st2 := newCollector(t)
	ingest(t, c2, SourceSyslog,
		"Dec 31 20:00:00 chi-per1 %SYS-5-RESTART: System restarted\n")
	finalize(t, c2)
	if got := st2.All(event.RouterReboot); !got[0].Start.Equal(time.Date(2011, 1, 1, 2, 0, 0, 0, time.UTC)) {
		t.Errorf("windowless reboot at %v", got[0].Start)
	}
}

func TestInterfaceFlapPairing(t *testing.T) {
	c, st := newCollector(t)
	ingest(t, c, SourceSyslog, strings.Join([]string{
		"Jan  2 06:00:00 chi-per1 %LINK-3-UPDOWN: Interface to-custB, changed state to down",
		"Jan  2 06:00:40 chi-per1 %LINK-3-UPDOWN: Interface to-custB, changed state to up",
		"Jan  2 06:00:01 chi-per1 %LINEPROTO-5-UPDOWN: Line protocol on Interface to-custB, changed state to down",
		"Jan  2 06:00:41 chi-per1 %LINEPROTO-5-UPDOWN: Line protocol on Interface to-custB, changed state to up",
		// A lone down with no up: down event only, no flap.
		"Jan  2 09:00:00 chi-per1 %LINK-3-UPDOWN: Interface to-chi-cr1, changed state to down",
	}, "\n")+"\n")
	finalize(t, c)

	loc := locus.Between(locus.Interface, "chi-per1", "to-custB")
	flaps := st.All(event.InterfaceFlap)
	if len(flaps) != 1 || flaps[0].Loc != loc {
		t.Fatalf("flaps = %v", flaps)
	}
	if flaps[0].Duration() != 40*time.Second {
		t.Errorf("flap duration = %v", flaps[0].Duration())
	}
	if n := st.Count(event.InterfaceDown); n != 2 {
		t.Errorf("downs = %d, want 2", n)
	}
	if n := st.Count(event.InterfaceUp); n != 1 {
		t.Errorf("ups = %d, want 1", n)
	}
	if n := st.Count(event.LineProtoFlap); n != 1 {
		t.Errorf("line proto flaps = %d", n)
	}
}

func TestFlapWindowBoundary(t *testing.T) {
	c, st := newCollector(t)
	// Down and up 11 minutes apart: beyond the 10-minute flap window.
	ingest(t, c, SourceSyslog, strings.Join([]string{
		"Jan  2 06:00:00 chi-per1 %LINK-3-UPDOWN: Interface to-custB, changed state to down",
		"Jan  2 06:11:00 chi-per1 %LINK-3-UPDOWN: Interface to-custB, changed state to up",
	}, "\n")+"\n")
	finalize(t, c)
	if n := st.Count(event.InterfaceFlap); n != 0 {
		t.Errorf("flaps = %d, want 0 (outage, not flap)", n)
	}
}

func TestBGPEvents(t *testing.T) {
	c, st := newCollector(t)
	ingest(t, c, SourceSyslog, strings.Join([]string{
		"Jan  2 06:00:00 chi-per1 %BGP-5-ADJCHANGE: neighbor 10.1.0.10 Down Interface flap",
		"Jan  2 06:01:10 chi-per1 %BGP-5-ADJCHANGE: neighbor 10.1.0.10 Up",
		"Jan  2 06:00:00 chi-per1 %BGP-5-NOTIFICATION: sent to neighbor 10.1.0.10 4/0 (hold time expired)",
		"Jan  2 08:00:00 chi-per1 %BGP-5-NOTIFICATION: received from neighbor 10.1.0.10 6/4 (administrative reset)",
	}, "\n")+"\n")
	finalize(t, c)

	loc := locus.Between(locus.RouterNeighbor, "chi-per1", "10.1.0.10")
	flaps := st.All(event.EBGPFlap)
	if len(flaps) != 1 || flaps[0].Loc != loc {
		t.Fatalf("eBGP flaps = %v", flaps)
	}
	if flaps[0].Attr("reason") != "Interface flap" {
		t.Errorf("reason attr = %q", flaps[0].Attr("reason"))
	}
	if n := st.Count(event.EBGPHoldTimerExpired); n != 1 {
		t.Errorf("HTE = %d", n)
	}
	if n := st.Count(event.CustomerResetSession); n != 1 {
		t.Errorf("resets = %d", n)
	}
	if n := st.Count(event.BGPNotification); n != 2 {
		t.Errorf("notifications = %d", n)
	}
}

func TestPIMEvents(t *testing.T) {
	c, st := newCollector(t)
	n := c.Topo
	nycLoop := n.Routers["nyc-per1"].Loopback.String()
	// VRF adjacency: chi-per1 loses its PE neighbor nyc-per1 and regains it.
	// Uplink adjacency: chi-per1 loses its directly connected core.
	up, _ := n.InterfaceByName("chi-per1", "to-chi-cr1")
	coreIP := up.Link.Other("chi-per1").IP.String()
	ingest(t, c, SourceSyslog, strings.Join([]string{
		"Jan  2 06:00:00 chi-per1 %PIM-5-NBRCHG: VRF custA: neighbor " + nycLoop + " DOWN",
		"Jan  2 06:01:00 chi-per1 %PIM-5-NBRCHG: VRF custA: neighbor " + nycLoop + " UP",
		"Jan  2 07:00:00 chi-per1 %PIM-5-NBRCHG: neighbor " + coreIP + " DOWN on interface to-chi-cr1",
	}, "\n")+"\n")
	finalize(t, c)

	adj := st.All(event.PIMAdjacencyChange)
	if len(adj) != 1 {
		t.Fatalf("PIM adjacency changes = %v", adj)
	}
	if adj[0].Loc != locus.Between(locus.RouterNeighbor, "chi-per1", "nyc-per1") {
		t.Errorf("adjacency loc = %v", adj[0].Loc)
	}
	if adj[0].Duration() != time.Minute {
		t.Errorf("adjacency duration = %v", adj[0].Duration())
	}
	if adj[0].Attr("vrf") != "custA" {
		t.Errorf("vrf attr = %q", adj[0].Attr("vrf"))
	}
	upl := st.All(event.PIMUplinkAdjacencyChange)
	if len(upl) != 1 || upl[0].Loc != locus.Between(locus.RouterNeighbor, "chi-per1", "chi-cr1") {
		t.Fatalf("uplink adjacency = %v", upl)
	}
}

func TestSNMPDetectors(t *testing.T) {
	c, st := newCollector(t)
	ingest(t, c, SourceSNMP, strings.Join([]string{
		"1262304000,chi-per1.net.example.com,cpu5min,,87.5", // high
		"1262304300,chi-per1,cpu5min,,42.0",                 // normal
		"1262304000,CHI-CR1,ifutil,to-chi-cr2,92.0",         // congested
		"1262304000,chi-cr1,ifutil,to-nyc-chi-1,10.0",       // fine
		"1262304000,chi-cr1,iferrors,to-chi-cr2,340",        // lossy
		"1262304000,chi-cr1,iferrors,to-chi-per1,3",         // fine
	}, "\n")+"\n")
	finalize(t, c)

	cpu := st.All(event.CPUHighAverage)
	if len(cpu) != 1 || cpu[0].Loc.A != "chi-per1" {
		t.Fatalf("cpu high = %v", cpu)
	}
	if !cpu[0].Start.Equal(time.Unix(1262304000, 0).UTC()) || cpu[0].Duration() != 5*time.Minute {
		t.Errorf("cpu interval = %v + %v", cpu[0].Start, cpu[0].Duration())
	}
	if n := st.Count(event.LinkCongestion); n != 1 {
		t.Errorf("congestion = %d", n)
	}
	if n := st.Count(event.LinkLoss); n != 1 {
		t.Errorf("loss = %d", n)
	}
}

func TestOSPFMonInference(t *testing.T) {
	c, st := newCollector(t)
	n := c.Topo
	l := n.Links["chi-wdc-1"]
	aIP, loopA := l.A.IP.String(), l.A.Router.Loopback.String()

	feed := strings.Join([]string{
		// Initial flood: no events.
		"2010-01-01T00:00:00Z " + loopA + " " + aIP + " metric 10 initial",
		// Cost out at 06:00, cost back in at 06:30.
		"2010-01-01T06:00:00Z " + loopA + " " + aIP + " metric 65535",
		"2010-01-01T06:30:00Z " + loopA + " " + aIP + " metric 10",
		// Re-flood of same metric: no events.
		"2010-01-01T07:00:00Z " + loopA + " " + aIP + " metric 10",
	}, "\n") + "\n"
	ingest(t, c, SourceOSPFMon, feed)
	finalize(t, c)

	// Re-convergence at both endpoint interfaces for each real change.
	if got := st.Count(event.OSPFReconvergence); got != 4 {
		t.Errorf("reconvergence events = %d, want 4 (2 changes × 2 interfaces)", got)
	}
	if got := st.Count(event.LinkCostOutDown); got != 2 {
		t.Errorf("cost out = %d, want 2", got)
	}
	if got := st.Count(event.LinkCostInUp); got != 2 {
		t.Errorf("cost in = %d, want 2", got)
	}
	// The OSPF simulation reflects the timeline.
	atOut := time.Date(2010, 1, 1, 6, 15, 0, 0, time.UTC)
	if w := c.OSPF.WeightAt("chi-wdc-1", atOut); w < 1<<20 {
		t.Errorf("weight during cost-out = %d", w)
	}
}

func TestOutOfOrderStatefulFeedRestored(t *testing.T) {
	// The OSPF weight timeline rejects out-of-order changes, so Ingest
	// must restore record order on stateful feeds before parsing: a
	// scrambled monitor feed yields exactly the events of the sorted one.
	c, st := newCollector(t)
	l := c.Topo.Links["chi-wdc-1"]
	aIP, loopA := l.A.IP.String(), l.A.Router.Loopback.String()

	feed := strings.Join([]string{
		"2010-01-01T06:30:00Z " + loopA + " " + aIP + " metric 10",
		"2010-01-01T00:00:00Z " + loopA + " " + aIP + " metric 10 initial",
		"2010-01-01T06:00:00Z " + loopA + " " + aIP + " metric 65535",
	}, "\n") + "\n"
	ingest(t, c, SourceOSPFMon, feed)
	finalize(t, c)

	if c.Malformed.Count != 0 {
		t.Fatalf("malformed = %+v, want out-of-order lines reordered, not rejected", c.Malformed)
	}
	if got := st.Count(event.LinkCostOutDown); got != 2 {
		t.Errorf("cost out = %d, want 2", got)
	}
	if got := st.Count(event.LinkCostInUp); got != 2 {
		t.Errorf("cost in = %d, want 2", got)
	}
	atOut := time.Date(2010, 1, 1, 6, 15, 0, 0, time.UTC)
	if w := c.OSPF.WeightAt("chi-wdc-1", atOut); w < 1<<20 {
		t.Errorf("weight during cost-out = %d, want infinity", w)
	}
}

func TestRouterCostInOutInference(t *testing.T) {
	c, st := newCollector(t)
	n := c.Topo
	// Cost out ALL internal links of chi-cr2 within a minute.
	r := n.Routers["chi-cr2"]
	var lines []string
	at := time.Date(2010, 1, 1, 6, 0, 0, 0, time.UTC)
	for _, card := range r.Cards {
		for _, p := range card.Ports {
			if p.Link == nil {
				continue
			}
			lines = append(lines,
				at.Format(time.RFC3339)+" "+r.Loopback.String()+" "+p.IP.String()+" metric 65535")
			at = at.Add(10 * time.Second)
		}
	}
	ingest(t, c, SourceOSPFMon, strings.Join(lines, "\n")+"\n")
	finalize(t, c)

	rc := st.All(event.RouterCostInOut)
	found := false
	for _, in := range rc {
		if in.Loc == locus.At(locus.Router, "chi-cr2") && in.Attr("direction") == "out" {
			found = true
		}
	}
	if !found {
		t.Errorf("router cost out not inferred: %v", rc)
	}
}

func TestBGPMonAndEgressChanges(t *testing.T) {
	c, st := newCollector(t)
	n := c.Topo
	chiLoop := n.Routers["chi-per1"].Loopback.String()
	wdcLoop := n.Routers["wdc-per1"].Loopback.String()
	feed := strings.Join([]string{
		"1262304000|A|198.51.100.0/24|" + chiLoop + "|100|3|0|0",
		"1262304000|A|198.51.100.0/24|" + wdcLoop + "|100|3|0|0",
		"1262307600|W|198.51.100.0/24|" + chiLoop,
	}, "\n") + "\n"
	ingest(t, c, SourceBGPMon, feed)
	finalize(t, c)

	pfx := netip.MustParsePrefix("198.51.100.0/24")
	from := time.Unix(1262303000, 0).UTC()
	to := time.Unix(1262310000, 0).UTC()
	c.EmitEgressChanges([]string{"nyc-per1"}, []netip.Prefix{pfx}, from, to)

	ch := st.All(event.BGPEgressChange)
	if len(ch) != 1 {
		t.Fatalf("egress changes = %v", ch)
	}
	if ch[0].Attr("old") != "chi-per1" || ch[0].Attr("new") != "wdc-per1" {
		t.Errorf("change attrs = %v", ch[0].Attrs)
	}
	if ch[0].Loc != locus.Between(locus.IngressDestination, "nyc-per1", "198.51.100.0/24") {
		t.Errorf("change loc = %v", ch[0].Loc)
	}
}

func TestTACACSAndWorkflow(t *testing.T) {
	c, st := newCollector(t)
	ingest(t, c, SourceTACACS, strings.Join([]string{
		"2010-01-02T00:00:00-06:00|chi-cr1|ops|cost-out interface to-chi-cr2",
		"2010-01-02T00:30:00-06:00|chi-cr1|ops|cost-in interface to-chi-cr2",
		"2010-01-02T01:00:00Z|chi-per1|prov|mvpn custA add",
		"2010-01-02T02:00:00Z|chi-per1|someone|show version",
	}, "\n")+"\n")
	c.EmitGenericSignatures = true
	ingest(t, c, SourceWorkflow,
		"2010-01-02T03:00:00Z|chi-per1|TKT1|provision-customer\n")
	finalize(t, c)

	out := st.All(event.CommandCostOut)
	if len(out) != 1 || out[0].Loc != locus.Between(locus.Interface, "chi-cr1", "to-chi-cr2") {
		t.Fatalf("cost-out commands = %v", out)
	}
	// TACACS zone offset normalized to UTC.
	if want := time.Date(2010, 1, 2, 6, 0, 0, 0, time.UTC); !out[0].Start.Equal(want) {
		t.Errorf("cost-out at %v, want %v", out[0].Start, want)
	}
	if n := st.Count(event.CommandCostIn); n != 1 {
		t.Errorf("cost-in = %d", n)
	}
	if n := st.Count(event.PIMConfigChange); n != 1 {
		t.Errorf("pim config changes = %d", n)
	}
	if n := st.Count(event.ProvisioningActivity); n != 1 {
		t.Errorf("provisioning = %d", n)
	}
	if n := st.Count("workflow:provision-customer"); n != 1 {
		t.Errorf("generic workflow series = %d", n)
	}
}

func TestLayer1(t *testing.T) {
	c, st := newCollector(t)
	ingest(t, c, SourceLayer1, strings.Join([]string{
		"2010/01/02 03:04:05 -0500|sonet-chi-per1-a|SONET-APS|protection switch",
		"2010/01/02 03:04:05 +0000|mesh-nyc-cr1|MESH-RESTORE|fast",
		"2010/01/02 03:05:05 +0000|mesh-nyc-cr1|MESH-RESTORE|regular",
	}, "\n")+"\n")
	finalize(t, c)
	s := st.All(event.SONETRestoration)
	if len(s) != 1 {
		t.Fatalf("sonet = %v", s)
	}
	if want := time.Date(2010, 1, 2, 8, 4, 5, 0, time.UTC); !s[0].Start.Equal(want) {
		t.Errorf("sonet at %v, want %v", s[0].Start, want)
	}
	if st.Count(event.OpticalFast) != 1 || st.Count(event.OpticalRegular) != 1 {
		t.Error("optical restorations miscounted")
	}
}

func TestPerfBaselines(t *testing.T) {
	c, st := newCollector(t)
	var lines []string
	epoch := int64(1262304000)
	// 24 normal samples establish the baseline, then one bad bin.
	for i := 0; i < 24; i++ {
		lines = append(lines,
			itoa(epoch)+",nyc-per1,chi-per1,23.0,0.0,940")
		epoch += 300
	}
	lines = append(lines, itoa(epoch)+",nyc-per1,chi-per1,80.0,2.5,400")
	ingest(t, c, SourcePerfMon, strings.Join(lines, "\n")+"\n")
	finalize(t, c)

	if n := st.Count(event.DelayIncrease); n != 1 {
		t.Errorf("delay increases = %d", n)
	}
	if n := st.Count(event.LossIncrease); n != 1 {
		t.Errorf("loss increases = %d", n)
	}
	if n := st.Count(event.ThroughputDrop); n != 1 {
		t.Errorf("throughput drops = %d", n)
	}
}

func itoa(v int64) string { return strconv.FormatInt(v, 10) }

func TestKeynoteAndServerLogs(t *testing.T) {
	c, st := newCollector(t)
	var lines []string
	epoch := int64(1262304000)
	for i := 0; i < 24; i++ {
		lines = append(lines, itoa(epoch)+",cdn-nyc-s1,agent-1,41.0,8800")
		epoch += 300
	}
	lines = append(lines, itoa(epoch)+",cdn-nyc-s1,agent-1,140.0,2000")
	ingest(t, c, SourceKeynote, strings.Join(lines, "\n")+"\n")
	ingest(t, c, SourceServer, strings.Join([]string{
		itoa(epoch) + ",load,cdn-nyc-s1,97",
		itoa(epoch) + ",load,cdn-nyc-s1,20",
		itoa(epoch) + ",policy,cdn-nyc,rebalance-7",
	}, "\n")+"\n")
	finalize(t, c)

	if n := st.Count(event.CDNRTTIncrease); n != 1 {
		t.Errorf("rtt increases = %d", n)
	}
	if n := st.Count(event.CDNThroughputDrop); n != 1 {
		t.Errorf("throughput drops = %d", n)
	}
	if n := st.Count(event.CDNServerIssue); n != 1 {
		t.Errorf("server issues = %d", n)
	}
	if n := st.Count(event.CDNPolicyChange); n != 1 {
		t.Errorf("policy changes = %d", n)
	}
}

func TestMalformedLinesTallied(t *testing.T) {
	c, _ := newCollector(t)
	bad := strings.Join([]string{
		"Jan  2 06:00:00 unknown-router %SYS-5-RESTART: System restarted",
		"garbage",
		"Jan  2 06:00:00 chi-per1 no-tag-here",
		"Jan  2 06:00:00 chi-per1 %LINK-3-UPDOWN: Interface x, changed state to sideways",
	}, "\n") + "\n"
	ingest(t, c, SourceSyslog, bad)
	ingest(t, c, SourceSNMP, "not,enough\n1262304000,chi-per1,wat,,5\n")
	ingest(t, c, SourceOSPFMon, "2010-01-01T00:00:00Z bad\n")
	ingest(t, c, SourceBGPMon, "xx|A|nope\n")
	ingest(t, c, SourceTACACS, "2010|x\n")
	ingest(t, c, SourceLayer1, "2010/01/02 00:00:00 +0000|ghost-dev|SONET-APS|x\n")
	finalize(t, c)
	if c.Malformed.Count != 10 {
		t.Errorf("malformed count = %d, want 10 (%v)", c.Malformed.Count, c.Malformed.Samples)
	}
	if len(c.Malformed.Samples) == 0 {
		t.Error("no samples recorded")
	}
}

func TestIngestLifecycleErrors(t *testing.T) {
	c, _ := newCollector(t)
	if err := c.Ingest("no-such-source", strings.NewReader("")); err == nil {
		t.Error("unknown source accepted")
	}
	finalize(t, c)
	if err := c.Finalize(); err == nil {
		t.Error("double Finalize accepted")
	}
	if err := c.Ingest(SourceSyslog, strings.NewReader("")); err == nil {
		t.Error("Ingest after Finalize accepted")
	}
}

func TestCommentsAndBlanksSkipped(t *testing.T) {
	c, st := newCollector(t)
	ingest(t, c, SourceSNMP, "# header comment\n\n1262304000,chi-per1,cpu5min,,99\n")
	finalize(t, c)
	if st.Count(event.CPUHighAverage) != 1 || c.Malformed.Count != 0 {
		t.Error("comment/blank handling wrong")
	}
}

func TestErrorBudgetQuarantine(t *testing.T) {
	c, st := newCollector(t)
	c.Budget = ErrorBudget{MinLines: 10, MaxDropRate: 0.5}
	var b strings.Builder
	// Nine good lines, then a run of garbage that blows the 50% budget,
	// then a good line that must never be reached.
	for i := 0; i < 9; i++ {
		b.WriteString("Jan  2 06:00:0" + strconv.Itoa(i) + " chi-per1 %SYS-5-RESTART: System restarted\n")
	}
	for i := 0; i < 12; i++ {
		b.WriteString("total garbage line\n")
	}
	b.WriteString("Jan  2 07:00:00 nyc-per1 %SYS-5-RESTART: System restarted\n")
	ingest(t, c, SourceSyslog, b.String())

	s := c.Sources[SourceSyslog]
	if !s.Quarantined() {
		t.Fatalf("source not quarantined: %+v", s)
	}
	// Quarantine trips at the first malformed line where lines ≥ 10 and
	// malformed > 50%: after 9 good + 10 bad = 19 lines, 10 malformed.
	if s.Lines != 19 || s.Malformed != 10 {
		t.Errorf("stats at quarantine: %+v", s)
	}
	finalize(t, c)
	if got := st.Count(event.RouterReboot); got != 9 {
		t.Errorf("events before quarantine = %d, want 9 (tail must be skipped)", got)
	}
	if q := c.Summary().Quarantined(); len(q) != 1 || q[0] != SourceSyslog {
		t.Errorf("summary quarantined = %v", q)
	}
}

func TestErrorBudgetNotTrippedBelowMinLines(t *testing.T) {
	c, _ := newCollector(t)
	c.Budget = ErrorBudget{MinLines: 100, MaxDropRate: 0.5}
	// 20 garbage lines: 100% drop rate but below the judging floor.
	ingest(t, c, SourceSyslog, strings.Repeat("garbage\n", 20))
	if s := c.Sources[SourceSyslog]; s.Quarantined() {
		t.Errorf("quarantined below MinLines: %+v", s)
	}
}

func TestErrorBudgetDisabled(t *testing.T) {
	c, _ := newCollector(t)
	c.Budget = ErrorBudget{MinLines: 1, MaxDropRate: 1}
	ingest(t, c, SourceSyslog, strings.Repeat("garbage\n", 500))
	s := c.Sources[SourceSyslog]
	if s.Quarantined() {
		t.Errorf("MaxDropRate ≥ 1 must disable rate quarantine: %+v", s)
	}
	if s.Malformed != 500 {
		t.Errorf("malformed = %d", s.Malformed)
	}
}

func TestScannerFailureQuarantinesNotAborts(t *testing.T) {
	c, st := newCollector(t)
	// A 5 MB line exceeds the scanner's 4 MB buffer: previously this
	// aborted the whole ingest with an error; now the source quarantines
	// and the rest of the pipeline keeps going.
	huge := "Jan  2 06:00:00 chi-per1 %SYS-5-RESTART: " + strings.Repeat("x", 5<<20)
	err := c.Ingest(SourceSyslog, strings.NewReader(
		"Jan  2 06:00:00 chi-per1 %SYS-5-RESTART: System restarted\n"+huge+"\n"))
	if err != nil {
		t.Fatalf("scanner failure must not abort ingest: %v", err)
	}
	s := c.Sources[SourceSyslog]
	if !s.Quarantined() || !strings.Contains(s.Quarantine, "scan failed") {
		t.Errorf("quarantine = %q", s.Quarantine)
	}
	// Other sources remain ingestible.
	ingest(t, c, SourceSNMP, "1262304000,chi-per1,cpu5min,,87.5\n")
	finalize(t, c)
	if st.Count(event.RouterReboot) != 1 {
		t.Errorf("events before scan failure lost")
	}
}
