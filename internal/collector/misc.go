package collector

import (
	"fmt"
	"strings"
	"time"

	"grca/internal/event"
	"grca/internal/locus"
)

// parseTACACS ingests the command accounting log, pipe-separated:
//
//	2010-01-02T03:04:05-05:00|chi-cr1|opsuser|cost-out interface to-chi-cr2
//	2010-01-02T03:09:05-05:00|chi-cr1|opsuser|cost-in interface to-chi-cr2
//	2010-01-02T03:04:05Z|chi-per1|provteam|mvpn custA add
//
// Timestamps are RFC 3339 with arbitrary zone offsets (TACACS servers in
// different regions stamp differently); devices may be any alias.
// Commands recognized: "cost-out interface X" / "cost-in interface X"
// (Table I's operator cost commands) and "mvpn <vrf> add|remove" (the PIM
// application's configuration change, Table VII).
func (c *Collector) parseTACACS(line string) error {
	parts := strings.Split(line, "|")
	if len(parts) != 4 {
		return fmt.Errorf("want 4 fields, got %d", len(parts))
	}
	at, err := time.Parse(time.RFC3339, parts[0])
	if err != nil {
		return fmt.Errorf("bad timestamp %q", parts[0])
	}
	at = at.UTC()
	router, err := c.Aliases.Canonical(parts[1])
	if err != nil {
		return err
	}
	user, command := parts[2], strings.TrimSpace(parts[3])
	fields := strings.Fields(command)
	if len(fields) == 0 {
		return fmt.Errorf("empty command")
	}
	attrs := map[string]string{"user": user, "command": command}
	switch fields[0] {
	case "cost-out", "cost-in":
		if len(fields) != 3 || fields[1] != "interface" {
			return fmt.Errorf("malformed cost command %q", command)
		}
		name := event.CommandCostOut
		if fields[0] == "cost-in" {
			name = event.CommandCostIn
		}
		c.add(name, at, at, locus.Between(locus.Interface, router, fields[2]), attrs)
	case "mvpn":
		if len(fields) != 3 || (fields[2] != "add" && fields[2] != "remove") {
			return fmt.Errorf("malformed mvpn command %q", command)
		}
		attrs["vrf"] = fields[1]
		c.add(event.PIMConfigChange, at, at, locus.At(locus.Router, router), attrs)
	default:
		// Other commands are routine; nothing to detect.
	}
	return nil
}

// parseWorkflow ingests the provisioning/workflow system's activity log:
//
//	2010-01-02T03:04:05Z|chi-per1|TKT0042|provision-customer
//
// Every record yields a "Provisioning activity" event; when
// EmitGenericSignatures is on, a per-action series "workflow:<action>" is
// also emitted — the candidate time series of the §IV-B correlation study.
func (c *Collector) parseWorkflow(line string) error {
	parts := strings.Split(line, "|")
	if len(parts) != 4 {
		return fmt.Errorf("want 4 fields, got %d", len(parts))
	}
	at, err := time.Parse(time.RFC3339, parts[0])
	if err != nil {
		return fmt.Errorf("bad timestamp %q", parts[0])
	}
	at = at.UTC()
	router, err := c.Aliases.Canonical(parts[1])
	if err != nil {
		return err
	}
	ticket, action := parts[2], parts[3]
	loc := locus.At(locus.Router, router)
	c.add(event.ProvisioningActivity, at, at, loc,
		map[string]string{"ticket": ticket, "action": action})
	if c.EmitGenericSignatures {
		c.add("workflow:"+action, at, at, loc, nil)
	}
	return nil
}

// parseLayer1 ingests layer-1 element logs, pipe-separated with a slashed
// local-office date and explicit numeric zone:
//
//	2010/01/02 03:04:05 -0500|sonet-chi-per1-a|SONET-APS|protection switch
//	2010/01/02 03:04:05 +0000|mesh-nyc-cr1|MESH-RESTORE|fast
//
// Event kinds: SONET-APS (SONET restoration) and MESH-RESTORE with a
// "fast" or "regular" detail (the optical-mesh restorations of Table I).
func (c *Collector) parseLayer1(line string) error {
	parts := strings.Split(line, "|")
	if len(parts) != 4 {
		return fmt.Errorf("want 4 fields, got %d", len(parts))
	}
	at, err := time.Parse("2006/01/02 15:04:05 -0700", parts[0])
	if err != nil {
		return fmt.Errorf("bad timestamp %q", parts[0])
	}
	at = at.UTC()
	device, kind, detail := parts[1], parts[2], parts[3]
	if _, ok := c.Topo.L1[device]; !ok {
		return fmt.Errorf("unknown layer-1 device %q", device)
	}
	loc := locus.At(locus.Layer1Device, device)
	attrs := map[string]string{"detail": detail}
	switch kind {
	case "SONET-APS":
		c.add(event.SONETRestoration, at, at, loc, attrs)
	case "MESH-RESTORE":
		switch detail {
		case "fast":
			c.add(event.OpticalFast, at, at, loc, attrs)
		case "regular":
			c.add(event.OpticalRegular, at, at, loc, attrs)
		default:
			return fmt.Errorf("unknown mesh restoration type %q", detail)
		}
	default:
		return fmt.Errorf("unknown layer-1 event %q", kind)
	}
	return nil
}
