package collector

import (
	"bytes"
	"time"

	"grca/internal/event"
	"grca/internal/locus"
)

// fastSyslog is the zero-copy twin of parseSyslog. It handles the strict
// RFC 3164 shape with the high-volume tags (LINK/LINEPROTO up-down,
// BGP adjacency changes, restarts, CPU spikes) and unrecognized tags;
// everything else — generic-signature mode, PIM and NOTIFICATION bodies,
// ragged timestamps — falls back to the legacy parser before any side
// effect happens.
func (c *Collector) fastSyslog(line []byte) (bool, error) {
	if c.EmitGenericSignatures {
		// The generic per-signature event would have to be emitted before
		// the tag dispatch could still fall back — mining runs use legacy.
		return false, nil
	}
	if len(line) < 16 {
		return false, nil
	}
	month, day, hh, mm, ss, ok := parseSyslogStamp(line[:15])
	if !ok {
		return false, nil
	}
	rest, ok := trimSpaces(line[15:])
	if !ok {
		return false, nil
	}
	sp := bytes.IndexByte(rest, ' ')
	if sp < 0 {
		return false, nil
	}
	router, ok := c.canonical(c.scr, rest[:sp])
	if !ok {
		return false, nil
	}
	msg, ok := trimSpaces(rest[sp+1:])
	if !ok {
		return false, nil
	}
	if len(msg) == 0 || msg[0] != '%' {
		return false, nil
	}
	colon := bytes.IndexByte(msg, ':')
	if colon < 0 {
		return false, nil
	}
	tag := msg[1:colon]
	body, ok := trimSpaces(msg[colon+1:])
	if !ok {
		return false, nil
	}

	year := c.Year
	if year == 0 {
		year = 2010
	}
	ts := time.Date(year, month, day, hh, mm, ss, 0, time.UTC)
	at := c.resolveSyslogYear(ts, c.location(router))

	switch {
	case bytes.Equal(tag, []byte("LINK-3-UPDOWN")):
		return c.fastUpDown(c.ifaceTrans, router, at, body, "Interface ")
	case bytes.Equal(tag, []byte("LINEPROTO-5-UPDOWN")):
		return c.fastUpDown(c.protoTrans, router, at, body, "Line protocol on Interface ")
	case bytes.Equal(tag, []byte("BGP-5-ADJCHANGE")):
		return c.fastBGPAdj(router, at, body)
	case bytes.Equal(tag, []byte("SYS-5-RESTART")):
		c.add(event.RouterReboot, at, at, locus.At(locus.Router, router), nil)
		return true, nil
	case bytes.Equal(tag, []byte("SYS-1-CPURISINGTHRESHOLD")):
		c.add(event.CPUHighSpike, at, at, locus.At(locus.Router, router),
			map[string]string{"detail": string(body)})
		return true, nil
	case bytes.Equal(tag, []byte("BGP-5-NOTIFICATION")), bytes.Equal(tag, []byte("PIM-5-NBRCHG")):
		return false, nil
	default:
		// Unrecognized but well-formed: operational noise, same as legacy.
		return true, nil
	}
}

// fastUpDown is the zero-copy twin of syslogUpDown.
func (c *Collector) fastUpDown(buf map[locus.Location][]transition, router string, at time.Time, body []byte, prefix string) (bool, error) {
	if len(body) < len(prefix) || string(body[:len(prefix)]) != prefix {
		return false, nil
	}
	rest := body[len(prefix):]
	const clause = ", changed state to "
	i := bytes.Index(rest, []byte(clause))
	if i < 0 {
		return false, nil
	}
	state, ok := trimSpaces(rest[i+len(clause):])
	if !ok {
		return false, nil
	}
	up := false
	switch {
	case bytes.Equal(state, []byte("up")):
		up = true
	case bytes.Equal(state, []byte("down")):
	default:
		return false, nil
	}
	loc := locus.Between(locus.Interface, router, string(rest[:i]))
	buf[loc] = append(buf[loc], transition{at: at, loc: loc, up: up})
	return true, nil
}

// fastBGPAdj is the zero-copy twin of syslogBGPAdj.
func (c *Collector) fastBGPAdj(router string, at time.Time, body []byte) (bool, error) {
	f, ok := c.scr.asciiFields(body)
	if !ok || len(f) < 3 || !bytes.Equal(f[0], []byte("neighbor")) {
		return false, nil
	}
	if _, ok := c.addrCached(f[1]); !ok {
		return false, nil
	}
	loc := locus.Between(locus.RouterNeighbor, router, string(f[1]))
	switch {
	case bytes.Equal(f[2], []byte("Up")):
		c.bgpTrans[loc] = append(c.bgpTrans[loc], transition{at: at, loc: loc, up: true})
	case bytes.Equal(f[2], []byte("Down")):
		var attr map[string]string
		if len(f) > 3 {
			// asciiFields guarantees single-space separation, so the
			// joined reason is the raw tail of the body.
			scr := c.scr
			scr.key = scr.key[:0]
			for i, w := range f[3:] {
				if i > 0 {
					scr.key = append(scr.key, ' ')
				}
				scr.key = append(scr.key, w...)
			}
			attr = map[string]string{"reason": string(scr.key)}
		}
		c.bgpTrans[loc] = append(c.bgpTrans[loc], transition{at: at, loc: loc, attr: attr})
	default:
		return false, nil
	}
	return true, nil
}
