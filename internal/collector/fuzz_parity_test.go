package collector

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"grca/internal/store"
	"grca/internal/testnet"
	"grca/internal/wal"
)

// The differential parity harness: every fuzz input is fed — as a whole
// multi-line feed — to two collectors over the same topology, one forced
// onto the reference string parsers and one using the zero-copy fast
// path. The two runs must agree on everything observable: the store
// digest (event-for-event, ID-for-ID byte identity), per-source stats,
// quarantine decisions, and the malformed samples with their exact error
// strings. Multi-line inputs are the point — they exercise scratch-
// buffer and arena reuse across lines, the class of aliasing bug pooling
// introduces.
func parityCheck(t *testing.T, source string, data []byte) {
	t.Helper()
	if len(data) > 1<<16 {
		data = data[:1<<16]
	}
	n := testnet.Build(t.Fatalf)
	window := func(c *Collector) {
		c.WindowStart = time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
		c.WindowEnd = time.Date(2010, 1, 8, 0, 0, 0, 0, time.UTC)
	}
	stFast, stRef := store.New(), store.New()
	fast := New(n.Topo, stFast, 2010)
	ref := New(n.Topo, stRef, 2010)
	ref.LegacyParsers = true
	window(fast)
	window(ref)

	errF := fast.Ingest(source, bytes.NewReader(data))
	errR := ref.Ingest(source, bytes.NewReader(data))
	if (errF == nil) != (errR == nil) || (errF != nil && errF.Error() != errR.Error()) {
		t.Fatalf("ingest errors diverged: fast=%v ref=%v", errF, errR)
	}
	if err := fast.Finalize(); err != nil {
		t.Fatalf("fast finalize: %v", err)
	}
	if err := ref.Finalize(); err != nil {
		t.Fatalf("ref finalize: %v", err)
	}

	if dF, dR := wal.StoreDigest(stFast), wal.StoreDigest(stRef); dF != dR {
		_, _, insF := stFast.Dump()
		_, _, insR := stRef.Dump()
		max := len(insF)
		if len(insR) > max {
			max = len(insR)
		}
		for i := 0; i < max; i++ {
			var f, r any
			if i < len(insF) {
				f = insF[i]
			}
			if i < len(insR) {
				r = insR[i]
			}
			if !reflect.DeepEqual(f, r) {
				t.Errorf("event %d: fast=%+v ref=%+v", i, f, r)
			}
		}
		t.Fatalf("store digest diverged: fast=%s ref=%s (%d vs %d events)",
			dF, dR, len(insF), len(insR))
	}
	if fast.Malformed.Count != ref.Malformed.Count ||
		!reflect.DeepEqual(fast.Malformed.Samples, ref.Malformed.Samples) {
		t.Fatalf("malformed diverged:\nfast %d %q\nref  %d %q",
			fast.Malformed.Count, fast.Malformed.Samples,
			ref.Malformed.Count, ref.Malformed.Samples)
	}
	if !reflect.DeepEqual(fast.Summary(), ref.Summary()) {
		t.Fatalf("summaries diverged:\nfast %+v\nref  %+v", fast.Summary(), ref.Summary())
	}
}

func FuzzParserParitySyslog(f *testing.F) {
	f.Add([]byte("Jan  2 06:00:00 chi-per1 %LINK-3-UPDOWN: Interface to-custB, changed state to down\n" +
		"Jan  2 06:00:40 chi-per1 %LINK-3-UPDOWN: Interface to-custB, changed state to up\n"))
	f.Add([]byte("Jan  2 06:00:01 CHI-PER1.NET.EXAMPLE.COM %LINEPROTO-5-UPDOWN: Line protocol on Interface to-chi-cr1, changed state to down"))
	// Pooling reuse: distinct interface names and reasons on consecutive
	// lines must not alias each other's bytes.
	f.Add([]byte("Jan  2 06:00:00 chi-per1 %BGP-5-ADJCHANGE: neighbor 10.1.0.10 Down Interface flap\n" +
		"Jan  2 06:00:05 chi-per1 %BGP-5-ADJCHANGE: neighbor 10.1.0.10 Up\n" +
		"Jan  2 06:00:09 nyc-per1 %BGP-5-ADJCHANGE: neighbor 10.2.0.10 Down hold time expired\n"))
	f.Add([]byte("Jan  2 06:00:00 chi-per1 %BGP-5-NOTIFICATION: sent to neighbor 10.1.0.10 4/0 (hold time expired)"))
	f.Add([]byte("Jan  2 06:00:00 chi-per1 %PIM-5-NBRCHG: VRF custA: neighbor 10.255.0.9 DOWN"))
	f.Add([]byte("Jan  2 06:00:00 chi-per1 %SYS-5-RESTART: System restarted\n" +
		"Jan  2 06:00:01 chi-per1 %SYS-1-CPURISINGTHRESHOLD: CPU at 97%"))
	f.Add([]byte("jan  2 06:00:00 chi-per1 %SYS-5-RESTART: lower-case month parses via reference path"))
	f.Add([]byte("Feb 29 06:00:00 chi-per1 %SYS-5-RESTART: leap-ish day\nFeb 30 06:00:00 chi-per1 %SYS-5-RESTART: bad day"))
	f.Add([]byte("Dec 31 20:00:00 chi-per1 %SYS-5-RESTART: year wrap"))
	f.Add([]byte("Jan 02 15:04:05 chi-per1 %UNKNOWN-7-TAG: noise"))
	f.Add([]byte("Jan  2 15:04:05 chi-per1   %SYS-5-RESTART:   padded   \n\n# comment\nshort"))
	f.Add([]byte("Jan  2 15:04:05 unknown-device %SYS-5-RESTART: x\nJan  2 15:04:05 chi-per1\t%SYS-5-RESTART: tab"))
	f.Fuzz(func(t *testing.T, data []byte) { parityCheck(t, SourceSyslog, data) })
}

func FuzzParserParitySNMP(f *testing.F) {
	f.Add([]byte("1262304000,chi-per1,cpu5min,,87.5\n1262304000,CHI-CR1,ifutil,to-chi-cr2,92.0\n" +
		"1262304000,chi-cr1,iferrors,to-chi-cr2,340\n"))
	f.Add([]byte("1262304300,chi-per1,cpu5min,,12.5\n1262304000,chi-per1,cpu5min,,99\n")) // out of order
	f.Add([]byte("1262304000,chi-per1,cpu5min,,1e2\n+1262304000,chi-per1,cpu5min,,87.5\n"))
	f.Add([]byte("1262304000,chi-per1,ifutil,,92.0\nbad,chi-per1,cpu5min,,87.5\n1262304000,nobody,cpu5min,,87.5"))
	f.Add([]byte("1262304000,10.255.0.1,cpu5min,,97.25\n1262304000,chi-per1,bogus,,1\n1262304000,chi-per1,cpu5min,87.5"))
	f.Add([]byte("9223372036854775808,chi-per1,cpu5min,,87.5\n-62135596800,chi-per1,cpu5min,,87.5"))
	f.Fuzz(func(t *testing.T, data []byte) { parityCheck(t, SourceSNMP, data) })
}

func FuzzParserParityBGPMon(f *testing.F) {
	f.Add([]byte("1262304000|A|198.51.100.0/24|10.255.0.6|100|3|0|0\n" +
		"1262307600|W|198.51.100.0/24|10.255.0.6\n"))
	f.Add([]byte("1262307600|W|198.51.100.0/24|chi-per1|extra\n1262304000|A|198.51.100.0/24|chi-per1|100|3|0|0"))
	f.Add([]byte("1262304000|A|198.51.100.0/24|10.255.0.6|100|3|0\n1262304000|X|198.51.100.0/24|10.255.0.6\n" +
		"bad|A|198.51.100.0/24|10.255.0.6|100|3|0|0\n1262304000|A|not-a-prefix|10.255.0.6|100|3|0|0"))
	// Out-of-order announces over two prefixes: order restoration must
	// agree byte-for-byte between the string and arena buffering paths.
	f.Add([]byte("1262307600|A|198.51.100.0/24|10.255.0.6|100|3|0|0\n" +
		"1262304000|A|203.0.113.0/24|10.255.0.6|100|3|0|0\n" +
		"1262305000|W|198.51.100.0/24|10.255.0.6\n"))
	f.Add([]byte("1262304000|A|198.51.100.0/24|unknown|100|3|0|0\n1262304000|A|198.51.100.0/24|10.255.0.6|+1|-2|0|0"))
	f.Fuzz(func(t *testing.T, data []byte) { parityCheck(t, SourceBGPMon, data) })
}

func FuzzParserParityOSPFMon(f *testing.F) {
	f.Add([]byte("2010-01-01T00:00:00Z 10.255.0.1 10.0.0.1 metric 10 initial\n" +
		"2010-01-02T03:04:05Z 10.255.0.1 10.0.0.1 metric 65535\n" +
		"2010-01-02T04:00:00Z 10.255.0.1 10.0.0.1 metric 10\n"))
	f.Add([]byte("2010-01-02T03:04:05-05:00 10.255.0.1 10.0.0.1 metric 20\n" + // offset form: reference stamp+parse
		"2010-01-02T03:04:05Z 10.255.0.1 10.0.0.1 metric 21\n"))
	f.Add([]byte("2010-01-02T03:04:05Z  10.255.0.1 10.0.0.1 metric 10\n" + // double space
		"2010-01-02T03:04:05Z 10.255.0.1 10.0.0.1\tmetric 10\n" + // tab
		"2010-02-30T03:04:05Z 10.255.0.1 10.0.0.1 metric 10\n")) // bad day
	f.Add([]byte("2010-01-02T03:04:05Z bad-addr 10.0.0.1 metric 10\n2010-01-02T03:04:05Z 10.255.0.1 10.9.9.9 metric 10\n" +
		"2010-01-02T03:04:05Z 10.255.0.1 10.0.0.1 metric -1\n2010-01-02T03:04:05Z 10.255.0.1 10.0.0.1 weight 10\n" +
		"2010-01-02T03:04:05Z 10.255.0.1 10.0.0.1 metric 10 bogus"))
	f.Fuzz(func(t *testing.T, data []byte) { parityCheck(t, SourceOSPFMon, data) })
}

func FuzzParserParityPerfMon(f *testing.F) {
	// Enough samples to arm the rolling baseline, then a breach: the
	// shared-baseline bookkeeping must agree across paths.
	f.Add([]byte("1262304000,nyc-per1,chi-per1,23.1,0.0,940\n" +
		"1262304300,nyc-per1,chi-per1,23.0,0.0,941\n" +
		"1262304600,nyc-per1,chi-per1,23.2,0.0,939\n" +
		"1262304900,nyc-per1,chi-per1,80.5,2.5,200\n"))
	f.Add([]byte("1262304300,nyc-per1,chi-per1,23.0,0.0,941\n1262304000,NYC-PER1,CHI-PER1,23.1,0.0,940\n")) // out of order + case
	f.Add([]byte("1262304000,nyc-per1,chi-per1,2.31e1,0.0,940\n1262304000,nyc-per1,nobody,23.1,0.0,940\n" +
		"1262304000,nyc-per1,chi-per1,23.1,0.0\n1262304000,nyc-per1,chi-per1,23.1,0.0,940,extra"))
	f.Add([]byte("# comment\n\n1262304000,10.255.0.2,10.255.0.1,0.5,0.25,100.125"))
	f.Fuzz(func(t *testing.T, data []byte) { parityCheck(t, SourcePerfMon, data) })
}
