package collector

import (
	"bytes"
	"net/netip"
	"sync"
	"time"

	"grca/internal/bgp"
	"grca/internal/event"
	"grca/internal/locus"
	"grca/internal/obs"
)

// The zero-copy fast path. Each of the five hottest feeds (syslog, SNMP,
// BGPMon, OSPFMon, PerfMon) has a fast parser that works directly on the
// scanner's []byte line — no per-line string conversion, no
// strings.Split garbage — and shares the legacy parser's downstream
// logic (threshold detectors, routing simulations, pairing buffers).
//
// Parity is by construction: a fast parser performs no side effect until
// the whole line has validated, and the moment anything is unusual — a
// field the byte-level scanner cannot handle with certainty, an unknown
// device, a float form outside the exact-division fast path — it returns
// handled=false and the legacy parser consumes the line instead,
// producing the event or the error message the slow path always
// produced. The only errors a fast parser returns itself come from the
// same shared calls (BGP/OSPF simulations) the legacy parser would have
// made with identical arguments. FuzzParserParity (fuzz_parity_test.go)
// runs whole feeds through both paths and requires identical stores,
// stats, and malformed samples.
var (
	mFastLines    = obs.GetCounter("collector.fastpath.lines")
	mFastFallback = obs.GetCounter("collector.fastpath.fallback")
)

// scratch is the pooled per-Ingest working memory of the fast path: the
// scanner's initial buffer, the line arena for order-restored feeds, and
// the field/key buffers the parsers slice into. Nothing in it survives
// an Ingest call — events copy every string they keep — which is exactly
// what the pooling-reuse fuzz seeds check.
type scratch struct {
	scanbuf []byte     // initial bufio.Scanner buffer
	arena   []byte     // line bytes of an order-restored feed
	spans   []lineSpan // line offsets into arena
	fields  [][]byte   // reused field-split result
	key     []byte     // baseline-key building
	lower   []byte     // alias lower-casing
}

type lineSpan struct {
	off, n int
	at     time.Time
}

var scratchPool = sync.Pool{
	New: func() any {
		return &scratch{
			scanbuf: make([]byte, 64*1024),
			fields:  make([][]byte, 0, 16),
		}
	},
}

func (s *scratch) reset() {
	s.arena = s.arena[:0]
	s.spans = s.spans[:0]
	s.fields = s.fields[:0]
	s.key = s.key[:0]
}

// split splits line on sep into the reused fields buffer, with
// strings.Split's semantics (n separators yield n+1 fields).
func (s *scratch) split(line []byte, sep byte) [][]byte {
	f := s.fields[:0]
	for {
		i := bytes.IndexByte(line, sep)
		if i < 0 {
			f = append(f, line)
			break
		}
		f = append(f, line[:i])
		line = line[i+1:]
	}
	s.fields = f
	return f
}

// asciiFields splits b on single ASCII spaces. ok=false when the split
// would not match strings.Fields — leading/trailing/double spaces, tabs
// or other whitespace bytes, or non-ASCII content that could hide a
// unicode space.
func (s *scratch) asciiFields(b []byte) ([][]byte, bool) {
	if len(b) == 0 {
		s.fields = s.fields[:0]
		return s.fields, true // Fields("") = no fields
	}
	if b[0] == ' ' || b[len(b)-1] == ' ' {
		return nil, false
	}
	f := s.fields[:0]
	start := 0
	for i := 0; i < len(b); i++ {
		switch c := b[i]; {
		case c == ' ':
			if i == start { // double space
				return nil, false
			}
			f = append(f, b[start:i])
			start = i + 1
		case c == '\t' || c == '\n' || c == '\v' || c == '\f' || c == '\r' || c >= 0x80:
			return nil, false
		}
	}
	f = append(f, b[start:])
	s.fields = f
	return f, true
}

// trimSpaces trims ASCII spaces and tabs from both ends. ok=false when
// the trimmed value still touches bytes strings.TrimSpace might also
// trim (other control characters, possible unicode whitespace) — the
// caller falls back rather than guessing.
func trimSpaces(b []byte) ([]byte, bool) {
	for len(b) > 0 && (b[0] == ' ' || b[0] == '\t') {
		b = b[1:]
	}
	for len(b) > 0 && (b[len(b)-1] == ' ' || b[len(b)-1] == '\t') {
		b = b[:len(b)-1]
	}
	if len(b) == 0 {
		return b, true
	}
	if c := b[0]; c < 0x20 || c >= 0x80 {
		return b, false
	}
	if c := b[len(b)-1]; c < 0x20 || c >= 0x80 {
		return b, false
	}
	return b, true
}

// parseInt64 parses a base-10 integer with exactly strconv.ParseInt's
// accept set (optional sign, digits only, int64 range). ok=false on
// anything ParseInt would reject.
func parseInt64(b []byte) (int64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	neg := false
	if b[0] == '+' || b[0] == '-' {
		neg = b[0] == '-'
		b = b[1:]
		if len(b) == 0 {
			return 0, false
		}
	}
	var n uint64
	const cutoff = (1<<63 - 1) // max magnitude before the final digit check
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		if n > cutoff/10+1 { // will overflow even the negative bound
			return 0, false
		}
		n = n*10 + uint64(c-'0')
	}
	if neg {
		if n > 1<<63 {
			return 0, false
		}
		return -int64(n), true
	}
	if n > 1<<63-1 {
		return 0, false
	}
	return int64(n), true
}

// pow10 holds the exactly-representable powers of ten used by
// parseFloat's exact-division fast path.
var pow10 = [...]float64{1, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11, 1e12, 1e13, 1e14, 1e15}

// parseFloat parses plain decimal forms ("87.5", "-0.25", "940") whose
// value is mantissa/10^k with at most 15 mantissa digits. For those,
// float64(mantissa)/10^k is a single correctly-rounded operation, so the
// result is bit-identical to strconv.ParseFloat. Exponents, hex floats,
// Inf/NaN, and long mantissas report ok=false — the line falls back to
// the legacy parser, not to a slower float path, keeping the accept set
// decided in exactly one place.
func parseFloat(b []byte) (float64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	neg := false
	if b[0] == '+' || b[0] == '-' {
		neg = b[0] == '-'
		b = b[1:]
	}
	var mant uint64
	digits, frac := 0, -1
	for i, c := range b {
		switch {
		case c >= '0' && c <= '9':
			mant = mant*10 + uint64(c-'0')
			digits++
		case c == '.':
			if frac >= 0 { // second dot
				return 0, false
			}
			frac = len(b) - i - 1
		default:
			return 0, false
		}
	}
	if digits == 0 || digits > 15 {
		return 0, false
	}
	v := float64(mant)
	if frac > 0 {
		v /= pow10[frac]
	}
	if neg {
		v = -v
	}
	return v, true
}

var monthNum = map[string]time.Month{
	"Jan": 1, "Feb": 2, "Mar": 3, "Apr": 4, "May": 5, "Jun": 6,
	"Jul": 7, "Aug": 8, "Sep": 9, "Oct": 10, "Nov": 11, "Dec": 12,
}

// mdays is days-per-month as time.Parse validates a year-less stamp:
// the zero year is a leap year, so Feb 29 parses.
var mdays = [...]int{0, 31, 29, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31}

func digit2(b []byte) (int, bool) {
	if b[0] < '0' || b[0] > '9' || b[1] < '0' || b[1] > '9' {
		return 0, false
	}
	return int(b[0]-'0')*10 + int(b[1]-'0'), true
}

// parseSyslogStamp parses the strict 15-byte "Jan _2 15:04:05" form
// (exact month case, space- or zero-padded day, two-digit clock fields).
// Any other shape time.Parse might accept — lower-case months, ragged
// digits — reports ok=false and falls back.
func parseSyslogStamp(b []byte) (m time.Month, d, hh, mm, ss int, ok bool) {
	if len(b) != 15 || b[3] != ' ' || b[6] != ' ' || b[9] != ':' || b[12] != ':' {
		return 0, 0, 0, 0, 0, false
	}
	m, okm := monthNum[string(b[:3])] // no-alloc map probe
	if !okm {
		return 0, 0, 0, 0, 0, false
	}
	switch {
	case b[4] == ' ' && b[5] >= '0' && b[5] <= '9':
		d = int(b[5] - '0')
	default:
		var okd bool
		if d, okd = digit2(b[4:6]); !okd {
			return 0, 0, 0, 0, 0, false
		}
	}
	var ok1, ok2, ok3 bool
	hh, ok1 = digit2(b[7:9])
	mm, ok2 = digit2(b[10:12])
	ss, ok3 = digit2(b[13:15])
	if !ok1 || !ok2 || !ok3 || d < 1 || d > mdays[m] || hh > 23 || mm > 59 || ss > 59 {
		return 0, 0, 0, 0, 0, false
	}
	return m, d, hh, mm, ss, true
}

// parseRFC3339 parses the strict 20-byte Zulu form
// "2006-01-02T15:04:05Z". Offsets, fractional seconds, and anything else
// time.Parse(time.RFC3339, ...) also accepts report ok=false.
func parseRFC3339(b []byte) (time.Time, bool) {
	if len(b) != 20 || b[4] != '-' || b[7] != '-' || b[10] != 'T' ||
		b[13] != ':' || b[16] != ':' || b[19] != 'Z' {
		return time.Time{}, false
	}
	y1, ok0 := digit2(b[0:2])
	y2, ok1 := digit2(b[2:4])
	mo, ok2 := digit2(b[5:7])
	d, ok3 := digit2(b[8:10])
	hh, ok4 := digit2(b[11:13])
	mm, ok5 := digit2(b[14:16])
	ss, ok6 := digit2(b[17:19])
	if !ok0 || !ok1 || !ok2 || !ok3 || !ok4 || !ok5 || !ok6 {
		return time.Time{}, false
	}
	y := y1*100 + y2
	if mo < 1 || mo > 12 || d < 1 || hh > 23 || mm > 59 || ss > 59 {
		return time.Time{}, false
	}
	t := time.Date(y, time.Month(mo), d, hh, mm, ss, 0, time.UTC)
	if t.Day() != d || t.Month() != time.Month(mo) { // Feb 30 etc. normalized
		return time.Time{}, false
	}
	return t, true
}

// canonical resolves a device reference through the alias table on the
// fast path, mirroring Canonical's resolution order: alias map first,
// then IP-address references (monitor feeds key routers by loopback)
// through the address cache. ok=false falls back to the legacy parser.
func (c *Collector) canonical(scr *scratch, ref []byte) (string, bool) {
	trimmed, tok := trimSpaces(ref)
	if !tok {
		return "", false
	}
	name, lower, ok := c.Aliases.CanonicalBytes(trimmed, scr.lower)
	scr.lower = lower
	if ok {
		return name, true
	}
	if a, ok := c.addrCached(trimmed); ok {
		if name, ok := c.Aliases.CanonicalIP(a); ok {
			return name, true
		}
	}
	return "", false
}

// addrCached validates and resolves an IP address field through a
// per-collector cache, so repeated references parse (and allocate) once.
func (c *Collector) addrCached(b []byte) (netip.Addr, bool) {
	if a, ok := c.addrCache[string(b)]; ok { // no-alloc map probe
		return a, a.IsValid()
	}
	s := string(b)
	a, err := netip.ParseAddr(s)
	if err != nil {
		// Negative entries are not cached: garbage fields are unbounded,
		// and the fallback path re-parses them anyway.
		return netip.Addr{}, false
	}
	if c.addrCache == nil {
		c.addrCache = map[string]netip.Addr{}
	}
	c.addrCache[s] = a
	return a, true
}

// prefixCached is addrCached for CIDR prefixes (the BGPMon feed).
func (c *Collector) prefixCached(b []byte) (netip.Prefix, bool) {
	if p, ok := c.prefixCache[string(b)]; ok {
		return p, true
	}
	s := string(b)
	p, err := netip.ParsePrefix(s)
	if err != nil {
		return netip.Prefix{}, false
	}
	if c.prefixCache == nil {
		c.prefixCache = map[string]netip.Prefix{}
	}
	c.prefixCache[s] = p
	return p, true
}

// fastParser returns the zero-copy parser for a source, or nil when the
// source has none (or legacy parsing is forced). The returned function
// reports handled=false when the line must be re-parsed by the legacy
// parser; when it reports handled=true its side effects and returned
// error are identical to the legacy parser's.
func (c *Collector) fastParser(source string) func([]byte) (bool, error) {
	if c.LegacyParsers {
		return nil
	}
	switch source {
	case SourceSyslog:
		return c.fastSyslog
	case SourceSNMP:
		return c.fastSNMP
	case SourceBGPMon:
		return c.fastBGPMon
	case SourceOSPFMon:
		return c.fastOSPFMon
	case SourcePerfMon:
		return c.fastPerfMon
	}
	return nil
}

// fastSNMP is the zero-copy twin of parseSNMP.
func (c *Collector) fastSNMP(line []byte) (bool, error) {
	scr := c.scr
	f := scr.split(line, ',')
	if len(f) != 5 {
		return false, nil
	}
	sec, ok := parseInt64(f[0])
	if !ok {
		return false, nil
	}
	router, ok := c.canonical(scr, f[1])
	if !ok {
		return false, nil
	}
	value, ok := parseFloat(f[4])
	if !ok {
		return false, nil
	}
	start := time.Unix(sec, 0).UTC()
	end := start.Add(5 * time.Minute)
	switch {
	case bytes.Equal(f[2], []byte("cpu5min")):
		if value >= c.Thresholds.CPUAveragePct {
			c.add(event.CPUHighAverage, start, end, locus.At(locus.Router, router),
				map[string]string{"cpu": string(f[4])})
		}
	case bytes.Equal(f[2], []byte("ifutil")):
		if len(f[3]) == 0 {
			return false, nil
		}
		if value >= c.Thresholds.LinkUtilPct {
			c.add(event.LinkCongestion, start, end,
				locus.Between(locus.Interface, router, string(f[3])),
				map[string]string{"util": string(f[4])})
		}
	case bytes.Equal(f[2], []byte("iferrors")):
		if len(f[3]) == 0 {
			return false, nil
		}
		if value >= c.Thresholds.LinkErrorCount {
			c.add(event.LinkLoss, start, end,
				locus.Between(locus.Interface, router, string(f[3])),
				map[string]string{"errors": string(f[4])})
		}
	default:
		return false, nil
	}
	return true, nil
}

// fastPerfMon is the zero-copy twin of parsePerfMon. The rolling
// baselines are shared state with the legacy path, keyed by the same
// loc.Key()-derived strings built here without allocation.
func (c *Collector) fastPerfMon(line []byte) (bool, error) {
	scr := c.scr
	f := scr.split(line, ',')
	if len(f) != 6 {
		return false, nil
	}
	sec, ok := parseInt64(f[0])
	if !ok {
		return false, nil
	}
	ingress, ok := c.canonical(scr, f[1])
	if !ok {
		return false, nil
	}
	egress, ok := c.canonical(scr, f[2])
	if !ok {
		return false, nil
	}
	var vals [3]float64
	for i := 0; i < 3; i++ {
		if vals[i], ok = parseFloat(f[3+i]); !ok {
			return false, nil
		}
	}
	delay, loss, tput := vals[0], vals[1], vals[2]
	delayB, lossB, tputB := f[3], f[4], f[5]
	start := time.Unix(sec, 0).UTC()
	end := start.Add(5 * time.Minute)
	loc := locus.Between(locus.IngressEgress, ingress, egress)

	// Build "<loc.Key()>/<kind>" into the scratch key buffer.
	scr.key = append(scr.key[:0], "ingress:egress|"...)
	scr.key = append(scr.key, ingress...)
	scr.key = append(scr.key, '|')
	scr.key = append(scr.key, egress...)
	base := len(scr.key)

	scr.key = append(scr.key[:base], "/delay"...)
	c.judgeKey(scr.key, delay, func(med float64) bool {
		return delay > med*c.Thresholds.DelayFactor
	}, func() {
		c.add(event.DelayIncrease, start, end, loc, map[string]string{"delay_ms": string(delayB)})
	})
	scr.key = append(scr.key[:base], "/loss"...)
	c.judgeKey(scr.key, loss, func(med float64) bool {
		return loss > med+c.Thresholds.LossDelta
	}, func() {
		c.add(event.LossIncrease, start, end, loc, map[string]string{"loss_pct": string(lossB)})
	})
	scr.key = append(scr.key[:base], "/tput"...)
	c.judgeKey(scr.key, tput, func(med float64) bool {
		return med > 0 && tput < med*c.Thresholds.TputFactor
	}, func() {
		c.add(event.ThroughputDrop, start, end, loc, map[string]string{"tput_mbps": string(tputB)})
	})
	return true, nil
}

// fastBGPMon is the zero-copy twin of parseBGPMon. Simulation errors are
// returned directly: they come from the same Announce/Withdraw calls the
// legacy parser makes with identical arguments.
func (c *Collector) fastBGPMon(line []byte) (bool, error) {
	scr := c.scr
	f := scr.split(line, '|')
	if len(f) < 4 {
		return false, nil
	}
	sec, ok := parseInt64(f[0])
	if !ok {
		return false, nil
	}
	prefix, ok := c.prefixCached(f[2])
	if !ok {
		return false, nil
	}
	egress, ok := c.canonical(scr, f[3])
	if !ok {
		return false, nil
	}
	at := time.Unix(sec, 0).UTC()
	switch {
	case len(f[1]) == 1 && f[1][0] == 'W':
		return true, c.BGP.Withdraw(at, prefix, egress)
	case len(f[1]) == 1 && f[1][0] == 'A':
		if len(f) != 8 {
			return false, nil
		}
		var nums [4]int
		for i := 0; i < 4; i++ {
			v, ok := parseInt64(f[4+i])
			if !ok {
				return false, nil
			}
			nums[i] = int(v)
		}
		return true, c.BGP.Announce(at, bgp.Route{
			Prefix: prefix, Egress: egress,
			LocalPref: nums[0], ASPathLen: nums[1], MED: nums[2], Origin: nums[3],
		})
	}
	return false, nil
}

// fastOSPFMon is the zero-copy twin of parseOSPFMon; the whole back half
// (simulation update, re-convergence events, cost buffers) is the shared
// applyOSPFMon.
func (c *Collector) fastOSPFMon(line []byte) (bool, error) {
	scr := c.scr
	f, ok := scr.asciiFields(line)
	if !ok {
		return false, nil
	}
	if len(f) != 5 && !(len(f) == 6 && bytes.Equal(f[5], []byte("initial"))) {
		return false, nil
	}
	at, ok := parseRFC3339(f[0])
	if !ok {
		return false, nil
	}
	if _, ok := c.addrCached(f[1]); !ok {
		return false, nil
	}
	ifip, ok := c.addrCached(f[2])
	if !ok {
		return false, nil
	}
	if !bytes.Equal(f[3], []byte("metric")) {
		return false, nil
	}
	metric64, ok := parseInt64(f[4])
	if !ok || metric64 < 0 || metric64 > int64(int(^uint(0)>>1)) {
		return false, nil
	}
	return true, c.applyOSPFMon(at, ifip, int(metric64), string(f[4]), len(f) == 6)
}
