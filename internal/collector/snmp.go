package collector

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"grca/internal/event"
	"grca/internal/locus"
)

// parseSNMP ingests 5-minute SNMP poller output, one CSV row per sample:
//
//	epoch,device,object,instance,value
//	1262304000,chi-per1.net.example.com,cpu5min,,87.5
//	1262304000,CHI-CR1,ifutil,to-chi-cr2,92.0
//	1262304000,chi-cr1,iferrors,to-chi-cr2,340
//
// Timestamps are epoch seconds (the poller already normalizes to UTC) and
// mark the *start* of the 5-minute bin. Objects: cpu5min (router CPU
// percent), ifutil (interface utilization percent), iferrors (corrupted
// packets in the bin).
func (c *Collector) parseSNMP(line string) error {
	parts := strings.Split(line, ",")
	if len(parts) != 5 {
		return fmt.Errorf("want 5 fields, got %d", len(parts))
	}
	epoch, err := strconv.ParseInt(parts[0], 10, 64)
	if err != nil {
		return fmt.Errorf("bad epoch %q", parts[0])
	}
	start := time.Unix(epoch, 0).UTC()
	end := start.Add(5 * time.Minute)
	router, err := c.Aliases.Canonical(parts[1])
	if err != nil {
		return err
	}
	value, err := strconv.ParseFloat(parts[4], 64)
	if err != nil {
		return fmt.Errorf("bad value %q", parts[4])
	}
	object, instance := parts[2], parts[3]
	switch object {
	case "cpu5min":
		if value >= c.Thresholds.CPUAveragePct {
			c.add(event.CPUHighAverage, start, end, locus.At(locus.Router, router),
				map[string]string{"cpu": parts[4]})
		}
	case "ifutil":
		if instance == "" {
			return fmt.Errorf("ifutil without interface instance")
		}
		if value >= c.Thresholds.LinkUtilPct {
			c.add(event.LinkCongestion, start, end,
				locus.Between(locus.Interface, router, instance),
				map[string]string{"util": parts[4]})
		}
	case "iferrors":
		if instance == "" {
			return fmt.Errorf("iferrors without interface instance")
		}
		if value >= c.Thresholds.LinkErrorCount {
			c.add(event.LinkLoss, start, end,
				locus.Between(locus.Interface, router, instance),
				map[string]string{"errors": parts[4]})
		}
	default:
		return fmt.Errorf("unknown SNMP object %q", object)
	}
	return nil
}
