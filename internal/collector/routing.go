package collector

import (
	"fmt"
	"net/netip"
	"sort"
	"strconv"
	"strings"
	"time"

	"grca/internal/bgp"
	"grca/internal/event"
	"grca/internal/locus"
	"grca/internal/ospf"
)

// LSInfinity is the OSPF metric meaning "do not use" as flooded on the
// wire; it maps to ospf.Infinity in the simulation.
const LSInfinity = 65535

// routerCostWindow groups per-link cost-out (or cost-in) changes on the
// same router into one "Router Cost In/Out" inference when they all land
// within this window (a maintenance costing out the whole router).
const routerCostWindow = 2 * time.Minute

// parseOSPFMon ingests the OSPF monitor feed (the OSPFMon of the paper),
// one flooded metric observation per line:
//
//	2010-01-02T03:04:05Z 10.255.0.1 10.0.0.1 metric 10
//	2010-01-02T03:04:05Z 10.255.0.1 10.0.0.1 metric 65535
//	2010-01-01T00:00:00Z 10.255.0.1 10.0.0.1 metric 10 initial
//
// Fields: timestamp (UTC), advertising router's loopback, the link
// interface address, and the flooded metric. Lines flagged "initial"
// belong to the monitor's startup full-LSDB download: they establish the
// baseline weights without generating re-convergence events.
//
// Event inference (Table I): every non-initial change yields an "OSPF
// re-convergence event" at both link interfaces; transitions to LSInfinity
// yield "Link Cost Out/Down"; transitions back yield "Link Cost In/Up";
// and Finalize groups whole-router transitions into "Router Cost In/Out".
func (c *Collector) parseOSPFMon(line string) error {
	fields := strings.Fields(line)
	if len(fields) != 5 && !(len(fields) == 6 && fields[5] == "initial") {
		return fmt.Errorf("want 'ts router ifip metric N [initial]'")
	}
	at, err := time.Parse(time.RFC3339, fields[0])
	if err != nil {
		return fmt.Errorf("bad timestamp %q", fields[0])
	}
	at = at.UTC()
	if _, err := netip.ParseAddr(fields[1]); err != nil {
		return fmt.Errorf("bad router address %q", fields[1])
	}
	ifip, err := netip.ParseAddr(fields[2])
	if err != nil {
		return fmt.Errorf("bad interface address %q", fields[2])
	}
	if fields[3] != "metric" {
		return fmt.Errorf("missing metric keyword")
	}
	metric, err := strconv.Atoi(fields[4])
	if err != nil || metric < 0 {
		return fmt.Errorf("bad metric %q", fields[4])
	}
	return c.applyOSPFMon(at, ifip, metric, fields[4], len(fields) == 6)
}

// applyOSPFMon is the back half of OSPFMon parsing — simulation update
// and event inference — shared verbatim by the reference parser and the
// zero-copy fast path so the two cannot drift.
func (c *Collector) applyOSPFMon(at time.Time, ifip netip.Addr, metric int, metricText string, initial bool) error {
	ifc, ok := c.Topo.InterfaceByIP(ifip)
	if !ok || ifc.Link == nil {
		return fmt.Errorf("interface address %v not on any known link", ifip)
	}
	link := ifc.Link

	w := metric
	if metric >= LSInfinity {
		w = ospf.Infinity
	}
	old := c.OSPF.WeightAt(link.ID, at)
	if err := c.OSPF.SetWeight(at, link.ID, w); err != nil {
		return err
	}
	if initial || old == w {
		return nil
	}

	locA := locus.Between(locus.Interface, link.A.Router.Name, link.A.Name)
	locB := locus.Between(locus.Interface, link.B.Router.Name, link.B.Name)
	attrs := map[string]string{"link": link.ID, "metric": metricText}
	for _, loc := range []locus.Location{locA, locB} {
		c.add(event.OSPFReconvergence, at, at, loc, attrs)
	}
	switch {
	case w >= ospf.Infinity && old < ospf.Infinity:
		for _, loc := range []locus.Location{locA, locB} {
			c.add(event.LinkCostOutDown, at, at, loc, attrs)
		}
		ch := ospf.WeightChange{At: at, LinkID: link.ID, Old: old, New: w}
		c.costOut[link.A.Router.Name] = append(c.costOut[link.A.Router.Name], ch)
		c.costOut[link.B.Router.Name] = append(c.costOut[link.B.Router.Name], ch)
	case w < ospf.Infinity && old >= ospf.Infinity:
		for _, loc := range []locus.Location{locA, locB} {
			c.add(event.LinkCostInUp, at, at, loc, attrs)
		}
		ch := ospf.WeightChange{At: at, LinkID: link.ID, Old: old, New: w}
		c.costIn[link.A.Router.Name] = append(c.costIn[link.A.Router.Name], ch)
		c.costIn[link.B.Router.Name] = append(c.costIn[link.B.Router.Name], ch)
	}
	return nil
}

// inferRouterCost runs at Finalize: when every internal link of a router
// was costed out (or in) within routerCostWindow, the per-link changes are
// summarized as one "Router Cost In/Out" event at the router — the
// signature of a whole-router maintenance.
func (c *Collector) inferRouterCost() {
	infer := func(buf map[string][]ospf.WeightChange, direction string) {
		routers := make([]string, 0, len(buf))
		for router := range buf {
			routers = append(routers, router)
		}
		sort.Strings(routers)
		for _, router := range routers {
			changes := buf[router]
			links := c.internalLinkCount(router)
			if links == 0 {
				continue
			}
			sort.Slice(changes, func(i, j int) bool { return changes[i].At.Before(changes[j].At) })
			// Slide a window over the changes; a full-router transition
			// touches every distinct link within the window.
			for i := 0; i < len(changes); {
				seen := map[string]bool{changes[i].LinkID: true}
				j := i + 1
				for j < len(changes) && changes[j].At.Sub(changes[i].At) <= routerCostWindow {
					seen[changes[j].LinkID] = true
					j++
				}
				if len(seen) >= links {
					c.add(event.RouterCostInOut, changes[i].At, changes[j-1].At,
						locus.At(locus.Router, router),
						map[string]string{"direction": direction})
				}
				i = j
			}
		}
	}
	infer(c.costOut, "out")
	infer(c.costIn, "in")
}

// internalLinkCount counts the router's links that participate in the IGP
// (customer attachments do not).
func (c *Collector) internalLinkCount(router string) int {
	r, ok := c.Topo.Routers[router]
	if !ok {
		return 0
	}
	n := 0
	for _, card := range r.Cards {
		for _, p := range card.Ports {
			if p.Link != nil && !p.CustomerFacing {
				if o := p.Link.Other(router); o != nil && !o.CustomerFacing {
					n++
				}
			}
		}
	}
	return n
}

// parseBGPMon ingests the route-reflector update feed, pipe-separated:
//
//	1262304000|A|198.51.100.0/24|10.255.0.6|100|3|0|0
//	1262307600|W|198.51.100.0/24|10.255.0.6
//
// Announce fields: epoch, "A", prefix, egress next-hop loopback, local
// preference, AS-path length, MED, origin. Withdraw: epoch, "W", prefix,
// egress loopback. Egress loopbacks normalize to router names via the
// alias table.
func (c *Collector) parseBGPMon(line string) error {
	parts := strings.Split(line, "|")
	if len(parts) < 4 {
		return fmt.Errorf("want at least 4 fields")
	}
	epoch, err := strconv.ParseInt(parts[0], 10, 64)
	if err != nil {
		return fmt.Errorf("bad epoch %q", parts[0])
	}
	at := time.Unix(epoch, 0).UTC()
	prefix, err := netip.ParsePrefix(parts[2])
	if err != nil {
		return fmt.Errorf("bad prefix %q", parts[2])
	}
	egress, err := c.Aliases.Canonical(parts[3])
	if err != nil {
		return err
	}
	switch parts[1] {
	case "W":
		return c.BGP.Withdraw(at, prefix, egress)
	case "A":
		if len(parts) != 8 {
			return fmt.Errorf("announce wants 8 fields, got %d", len(parts))
		}
		var nums [4]int
		for i := 0; i < 4; i++ {
			v, err := strconv.Atoi(parts[4+i])
			if err != nil {
				return fmt.Errorf("bad attribute %q", parts[4+i])
			}
			nums[i] = v
		}
		return c.BGP.Announce(at, bgp.Route{
			Prefix: prefix, Egress: egress,
			LocalPref: nums[0], ASPathLen: nums[1], MED: nums[2], Origin: nums[3],
		})
	}
	return fmt.Errorf("unknown update type %q", parts[1])
}

// EmitEgressChanges materializes "BGP egress change" events (Table I) for
// the given ingress routers and destination prefixes over [from, to],
// replaying the collected reflector feed through the emulated decision
// process. The full cross product of ingresses and destinations is far too
// large to materialize wholesale (as in the paper, where routes are
// computed on demand); applications call this for the pairs their
// diagnosis graphs care about.
func (c *Collector) EmitEgressChanges(ingresses []string, dests []netip.Prefix, from, to time.Time) {
	for _, ing := range ingresses {
		for _, dst := range dests {
			for _, ch := range c.BGP.EgressChanges(ing, dst.Addr(), from, to) {
				if ch.Old == "" {
					// The prefix was first learned inside the window:
					// table population, not a next-hop change.
					continue
				}
				c.add(event.BGPEgressChange, ch.At, ch.At,
					locus.Between(locus.IngressDestination, ing, dst.String()),
					map[string]string{"old": ch.Old, "new": ch.New})
			}
		}
	}
}
