package collector

import (
	"strings"
	"testing"

	"grca/internal/store"
	"grca/internal/testnet"
)

// FuzzIngest feeds arbitrary bytes to every parser: no input may panic or
// abort ingestion (malformed lines are tallied, never fatal).
func FuzzIngest(f *testing.F) {
	f.Add("Jan  2 15:04:05 chi-per1 %LINK-3-UPDOWN: Interface to-custB, changed state to down")
	f.Add("Jan  2 15:04:05 chi-per1 %BGP-5-ADJCHANGE: neighbor 10.1.0.10 Down")
	f.Add("Jan  2 15:04:05 chi-per1 %PIM-5-NBRCHG: VRF v: neighbor 10.255.0.9 DOWN")
	f.Add("1262304000,chi-per1,cpu5min,,87.5")
	f.Add("2010-01-01T00:00:00Z 10.255.0.1 10.0.0.1 metric 65535")
	f.Add("1262304000|A|198.51.100.0/24|10.255.0.6|100|3|0|0")
	f.Add("2010-01-02T03:04:05-05:00|chi-cr1|ops|cost-out interface to-chi-cr2")
	f.Add("2010/01/02 03:04:05 -0500|sonet-chi-per1-a|SONET-APS|switch")
	f.Add("1262304000,nyc-per1,chi-per1,23.1,0.0,940")
	f.Add("\x00\xff garbage \n multi\nline")
	f.Fuzz(func(t *testing.T, line string) {
		n := testnet.Build(t.Fatalf)
		c := New(n.Topo, store.New(), 2010)
		for _, src := range []string{
			SourceSyslog, SourceSNMP, SourceOSPFMon, SourceBGPMon,
			SourceTACACS, SourceWorkflow, SourceLayer1,
			SourcePerfMon, SourceKeynote, SourceServer,
		} {
			if err := c.Ingest(src, strings.NewReader(line)); err != nil {
				// Only scanner-level failures (e.g. absurd line lengths)
				// may error; they must be explicit, not panics.
				t.Logf("ingest %s: %v", src, err)
			}
		}
		if err := c.Finalize(); err != nil {
			t.Fatalf("finalize: %v", err)
		}
	})
}
