package collector_test

import (
	"strings"
	"testing"

	"grca/internal/chaos"
	"grca/internal/collector"
	"grca/internal/store"
	"grca/internal/testnet"
)

// chaosSeeds mutates a corpus of well-formed lines through every chaos
// fault class and returns the perturbed lines — realistic corruption
// (clock-skewed stamps, mid-line truncations, duplicates) rather than
// random bytes, so the fuzzer starts near the parsers' edge cases.
func chaosSeeds(source string, lines ...string) []string {
	text := strings.Join(lines, "\n") + "\n"
	out := append([]string(nil), lines...)
	for _, seed := range []int64{1, 2, 3} {
		inj := chaos.New(chaos.Config{
			Seed:              seed,
			Faults:            chaos.AllFaults(),
			TruncateFraction:  0.5,
			SkewFraction:      1,
			DuplicateFraction: 0.3,
		})
		out = append(out, strings.Split(strings.TrimSuffix(inj.Feed(source, text), "\n"), "\n")...)
	}
	return out
}

// FuzzSyslogLine drives the syslog parser — timestamp/year/timezone
// normalization, signature matching, transition buffering — from
// chaos-mutated seeds. The parser must never panic and must tally every
// line as either parsed or malformed.
func FuzzSyslogLine(f *testing.F) {
	for _, l := range chaosSeeds(collector.SourceSyslog,
		"Jan  2 15:04:05 chi-per1 %LINK-3-UPDOWN: Interface to-custB, changed state to down",
		"Jan  2 15:04:06 chi-per1 %LINK-3-UPDOWN: Interface to-custB, changed state to up",
		"Jan  2 15:04:05 chi-per1 %BGP-5-ADJCHANGE: neighbor 10.1.0.10 Down",
		"Jan  2 15:04:05 chi-per1 %PIM-5-NBRCHG: VRF v: neighbor 10.255.0.9 DOWN",
		"Dec 31 23:59:59 nyc-per1.net.example.com %SYS-5-RESTART: System restarted",
	) {
		f.Add(l)
	}
	f.Fuzz(func(t *testing.T, line string) {
		n := testnet.Build(t.Fatalf)
		c := collector.New(n.Topo, store.New(), 2010)
		if err := c.Ingest(collector.SourceSyslog, strings.NewReader(line)); err != nil {
			t.Fatalf("ingest: %v", err)
		}
		s := c.Sources[collector.SourceSyslog]
		if s != nil && s.Parsed+s.Malformed != s.Lines {
			t.Fatalf("line accounting broken: parsed %d + malformed %d != lines %d",
				s.Parsed, s.Malformed, s.Lines)
		}
		if err := c.Finalize(); err != nil {
			t.Fatalf("finalize: %v", err)
		}
	})
}

// FuzzSNMPLine drives the SNMP sample parser and its threshold detectors
// from chaos-mutated seeds.
func FuzzSNMPLine(f *testing.F) {
	for _, l := range chaosSeeds(collector.SourceSNMP,
		"1262304000,chi-per1,cpu5min,,87.5",
		"1262304000,chi-per1,ifInErrors,to-custB,150",
		"1262304300,chi-cr1,ifUtil,to-chi-cr2,92.5",
	) {
		f.Add(l)
	}
	f.Fuzz(func(t *testing.T, line string) {
		n := testnet.Build(t.Fatalf)
		c := collector.New(n.Topo, store.New(), 2010)
		if err := c.Ingest(collector.SourceSNMP, strings.NewReader(line)); err != nil {
			t.Fatalf("ingest: %v", err)
		}
		if err := c.Finalize(); err != nil {
			t.Fatalf("finalize: %v", err)
		}
	})
}

// FuzzTransitions drives the full transition-pairing path: a whole
// chaos-mutated multi-line feed of up/down/adjacency edges through Ingest
// and Finalize (flap pairing, BGP pairing, PIM pairing).
func FuzzTransitions(f *testing.F) {
	feeds := []string{
		strings.Join([]string{
			"Jan  2 15:04:05 chi-per1 %LINK-3-UPDOWN: Interface to-custB, changed state to down",
			"Jan  2 15:04:35 chi-per1 %LINEPROTO-5-UPDOWN: Line protocol on Interface to-custB, changed state to down",
			"Jan  2 15:05:05 chi-per1 %BGP-5-ADJCHANGE: neighbor 10.1.0.10 Down",
			"Jan  2 15:06:05 chi-per1 %LINK-3-UPDOWN: Interface to-custB, changed state to up",
			"Jan  2 15:06:15 chi-per1 %LINEPROTO-5-UPDOWN: Line protocol on Interface to-custB, changed state to up",
			"Jan  2 15:06:55 chi-per1 %BGP-5-ADJCHANGE: neighbor 10.1.0.10 Up",
			"Jan  2 16:00:00 chi-per1 %PIM-5-NBRCHG: VRF v: neighbor 10.255.0.9 DOWN",
			"Jan  2 16:02:00 chi-per1 %PIM-5-NBRCHG: VRF v: neighbor 10.255.0.9 UP",
		}, "\n") + "\n",
	}
	for _, feed := range feeds {
		f.Add(feed)
		for _, seed := range []int64{4, 5} {
			inj := chaos.New(chaos.Config{Seed: seed, Faults: chaos.AllFaults(), TruncateFraction: 0.3})
			f.Add(inj.Feed(collector.SourceSyslog, feed))
		}
	}
	f.Fuzz(func(t *testing.T, feed string) {
		n := testnet.Build(t.Fatalf)
		c := collector.New(n.Topo, store.New(), 2010)
		if err := c.Ingest(collector.SourceSyslog, strings.NewReader(feed)); err != nil {
			t.Fatalf("ingest: %v", err)
		}
		if err := c.Finalize(); err != nil {
			t.Fatalf("finalize: %v", err)
		}
	})
}
