package collector

import (
	"fmt"
	"net/netip"
	"strings"
	"time"

	"grca/internal/event"
	"grca/internal/locus"
)

// parseSyslog ingests router syslog. Lines follow the classic RFC 3164
// shape — *device-local* wall time with no year or zone, and a device name
// that may be any alias (short name, FQDN, upper-case):
//
//	Jan  2 15:04:05 CHI-PER1.net.example.com %LINK-3-UPDOWN: Interface so-0/0/0, changed state to down
//
// The collector normalizes the device reference via the configuration-
// derived alias table and converts the timestamp to UTC using the
// device's configured clock zone, resolving the paper's mixture of "local
// time (depending on the time zone of the device), network time ... and
// GMT".
func (c *Collector) parseSyslog(line string) error {
	ts, rest, err := c.splitSyslogTime(line)
	if err != nil {
		return err
	}
	sp := strings.IndexByte(rest, ' ')
	if sp < 0 {
		return fmt.Errorf("missing device field")
	}
	device, msg := rest[:sp], strings.TrimSpace(rest[sp+1:])
	router, err := c.Aliases.Canonical(device)
	if err != nil {
		return err
	}
	// Re-interpret the wall time in the device's zone, resolving the
	// year-less stamp against the collection window when one is set.
	at := c.resolveSyslogYear(ts, c.location(router))

	if !strings.HasPrefix(msg, "%") {
		return fmt.Errorf("missing facility tag")
	}
	colon := strings.IndexByte(msg, ':')
	if colon < 0 {
		return fmt.Errorf("missing message separator")
	}
	tag, body := msg[1:colon], strings.TrimSpace(msg[colon+1:])

	if c.EmitGenericSignatures {
		c.add("syslog:"+tag, at, at, locus.At(locus.Router, router), nil)
	}

	switch tag {
	case "LINK-3-UPDOWN":
		return c.syslogUpDown(c.ifaceTrans, router, at, body, "Interface ")
	case "LINEPROTO-5-UPDOWN":
		return c.syslogUpDown(c.protoTrans, router, at, body, "Line protocol on Interface ")
	case "BGP-5-ADJCHANGE":
		return c.syslogBGPAdj(router, at, body)
	case "BGP-5-NOTIFICATION":
		return c.syslogBGPNotif(router, at, body)
	case "SYS-5-RESTART":
		c.add(event.RouterReboot, at, at, locus.At(locus.Router, router), nil)
	case "SYS-1-CPURISINGTHRESHOLD":
		c.add(event.CPUHighSpike, at, at, locus.At(locus.Router, router),
			map[string]string{"detail": body})
	case "PIM-5-NBRCHG":
		return c.syslogPIM(router, at, body)
	default:
		// Unrecognized but well-formed messages are normal operational
		// noise; the generic signature (if enabled) already captured them.
	}
	return nil
}

// splitSyslogTime parses the leading "Jan  2 15:04:05 " and returns the
// wall time (year filled from c.Year) plus the remainder.
func (c *Collector) splitSyslogTime(line string) (time.Time, string, error) {
	// Month (3) + space; day may be space-padded.
	if len(line) < 16 {
		return time.Time{}, "", fmt.Errorf("line too short")
	}
	stamp := line[:15]
	ts, err := time.Parse("Jan _2 15:04:05", stamp)
	if err != nil {
		return time.Time{}, "", fmt.Errorf("bad timestamp %q: %v", stamp, err)
	}
	year := c.Year
	if year == 0 {
		year = 2010
	}
	ts = time.Date(year, ts.Month(), ts.Day(), ts.Hour(), ts.Minute(), ts.Second(), 0, time.UTC)
	return ts, strings.TrimSpace(line[15:]), nil
}

// resolveSyslogYear converts a year-less wall time to UTC in the device's
// zone. With a collection window configured, the candidate year landing
// inside the (slightly padded) window wins; otherwise the configured Year
// is taken at face value.
func (c *Collector) resolveSyslogYear(ts time.Time, loc *time.Location) time.Time {
	mk := func(year int) time.Time {
		return time.Date(year, ts.Month(), ts.Day(), ts.Hour(), ts.Minute(), ts.Second(), 0, loc).UTC()
	}
	if c.WindowStart.IsZero() || c.WindowEnd.IsZero() {
		return mk(c.Year)
	}
	lo, hi := c.WindowStart.Add(-24*time.Hour), c.WindowEnd.Add(24*time.Hour)
	for _, year := range []int{c.Year, c.Year - 1, c.Year + 1} {
		if at := mk(year); !at.Before(lo) && !at.After(hi) {
			return at
		}
	}
	return mk(c.Year)
}

func (c *Collector) syslogUpDown(buf map[locus.Location][]transition, router string, at time.Time, body, prefix string) error {
	rest, ok := strings.CutPrefix(body, prefix)
	if !ok {
		return fmt.Errorf("unexpected UPDOWN body %q", body)
	}
	comma := strings.Index(rest, ", changed state to ")
	if comma < 0 {
		return fmt.Errorf("missing state clause")
	}
	ifname := rest[:comma]
	state := strings.TrimSpace(rest[comma+len(", changed state to "):])
	up := false
	switch state {
	case "up":
		up = true
	case "down":
	default:
		return fmt.Errorf("unknown state %q", state)
	}
	loc := locus.Between(locus.Interface, router, ifname)
	buf[loc] = append(buf[loc], transition{at: at, loc: loc, up: up})
	return nil
}

func (c *Collector) syslogBGPAdj(router string, at time.Time, body string) error {
	// "neighbor 10.1.0.2 Down Interface flap" / "neighbor 10.1.0.2 Up"
	fields := strings.Fields(body)
	if len(fields) < 3 || fields[0] != "neighbor" {
		return fmt.Errorf("unexpected ADJCHANGE body %q", body)
	}
	if _, err := netip.ParseAddr(fields[1]); err != nil {
		return fmt.Errorf("bad neighbor address %q", fields[1])
	}
	loc := locus.Between(locus.RouterNeighbor, router, fields[1])
	var attr map[string]string
	if len(fields) > 3 {
		attr = map[string]string{"reason": strings.Join(fields[3:], " ")}
	}
	switch fields[2] {
	case "Up":
		c.bgpTrans[loc] = append(c.bgpTrans[loc], transition{at: at, loc: loc, up: true})
	case "Down":
		c.bgpTrans[loc] = append(c.bgpTrans[loc], transition{at: at, loc: loc, attr: attr})
	default:
		return fmt.Errorf("unknown adjacency state %q", fields[2])
	}
	return nil
}

func (c *Collector) syslogBGPNotif(router string, at time.Time, body string) error {
	// "sent to neighbor 10.1.0.2 4/0 (hold time expired)" or
	// "received from neighbor 10.1.0.2 6/4 (administrative reset)"
	fields := strings.Fields(body)
	idx := -1
	for i, f := range fields {
		if f == "neighbor" && i+1 < len(fields) {
			idx = i + 1
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("notification without neighbor: %q", body)
	}
	if _, err := netip.ParseAddr(fields[idx]); err != nil {
		return fmt.Errorf("bad neighbor address %q", fields[idx])
	}
	loc := locus.Between(locus.RouterNeighbor, router, fields[idx])
	c.add(event.BGPNotification, at, at, loc, nil)
	switch {
	case strings.Contains(body, "hold time expired"):
		c.add(event.EBGPHoldTimerExpired, at, at, loc, nil)
	case strings.HasPrefix(body, "received") && strings.Contains(body, "administrative reset"):
		c.add(event.CustomerResetSession, at, at, loc, nil)
	}
	return nil
}

func (c *Collector) syslogPIM(router string, at time.Time, body string) error {
	// MVPN PE–PE adjacency (the Table VIII symptom):
	//   "VRF custA: neighbor 10.255.0.9 DOWN"
	// Global PIM on the uplink toward the backbone:
	//   "neighbor 10.0.0.5 DOWN on interface so-1/0/0"
	fields := strings.Fields(body)
	vrf := ""
	if len(fields) >= 2 && fields[0] == "VRF" {
		vrf = strings.TrimSuffix(fields[1], ":")
		fields = fields[2:]
	}
	if len(fields) < 3 || fields[0] != "neighbor" {
		return fmt.Errorf("unexpected NBRCHG body %q", body)
	}
	addr, err := netip.ParseAddr(fields[1])
	if err != nil {
		return fmt.Errorf("bad neighbor address %q", fields[1])
	}
	state := fields[2]

	var loc locus.Location
	attrs := map[string]string{}
	if vrf != "" {
		// The neighbor is another PE, identified by loopback.
		peer, ok := c.Aliases.CanonicalIP(addr)
		if !ok {
			return fmt.Errorf("unknown PE loopback %v", addr)
		}
		loc = locus.Between(locus.RouterNeighbor, router, peer)
		attrs["vrf"] = vrf
	} else {
		// Directly connected neighbor on the uplink: resolve through the
		// shared /30 to the far-end router.
		ifc, ok := c.Topo.InterfaceForNeighborIP(router, addr)
		if !ok || ifc.Link == nil {
			return fmt.Errorf("cannot resolve PIM neighbor %v on %s", addr, router)
		}
		far := ifc.Link.Other(router)
		if far == nil {
			return fmt.Errorf("degenerate link for PIM neighbor %v", addr)
		}
		loc = locus.Between(locus.RouterNeighbor, router, far.Router.Name)
		attrs["uplink"] = "true"
	}
	switch state {
	case "DOWN":
		c.pimDown = append(c.pimDown, transition{at: at, loc: loc, attr: attrs})
	case "UP":
		c.pimUp[loc] = append(c.pimUp[loc], at)
	default:
		return fmt.Errorf("unknown PIM state %q", state)
	}
	return nil
}
