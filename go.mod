module grca

go 1.22
