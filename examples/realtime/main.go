// Real-time root cause analysis (paper §VI future work): instead of
// diagnosing a month of flaps in a batch, stream the normalized event feed
// through a realtime.Processor and receive each diagnosis as soon as the
// symptom's evidence horizon passes. The example replays a simulated
// corpus as a live stream and reports diagnosis latency relative to event
// time.
//
//	go run ./examples/realtime
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"grca/internal/apps/bgpflap"
	"grca/internal/browser"
	"grca/internal/engine"
	"grca/internal/event"
	"grca/internal/platform"
	"grca/internal/realtime"
	"grca/internal/simnet"
)

func main() {
	dataset, err := simnet.Generate(simnet.Config{
		Seed: 12, PoPs: 3, PERsPerPoP: 2, SessionsPerPER: 10,
		Duration: 7 * 24 * time.Hour, BGPFlapIncidents: 300,
	})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := platform.FromDataset(dataset, platform.Options{})
	if err != nil {
		log.Fatal(err)
	}
	_, graph, err := bgpflap.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Order the normalized events by availability (end time) — the live
	// stream a real deployment's Data Collector would deliver.
	var stream []event.Instance
	for _, name := range sys.Store.Names() {
		for _, in := range sys.Store.All(name) {
			stream = append(stream, *in)
		}
	}
	sort.SliceStable(stream, func(i, j int) bool { return stream[i].End.Before(stream[j].End) })

	grace := realtime.GraceFor(graph, 15*time.Minute)
	fmt.Printf("streaming %d events; derived grace period %v\n", len(stream), grace)

	p := realtime.New(sys.View, graph, grace)
	var diagnoses []engine.Diagnosis
	var worstLag time.Duration
	began := time.Now()
	for _, in := range stream {
		out, late := p.Observe(in)
		if late {
			log.Fatalf("availability-ordered replay produced a late arrival: %v", in)
		}
		for _, d := range out {
			// Lag in *event time*: how far the stream clock had to advance
			// past the symptom before it could be safely diagnosed.
			lag := in.End.Sub(d.Symptom.End)
			if lag > worstLag {
				worstLag = lag
			}
		}
		diagnoses = append(diagnoses, out...)
	}
	diagnoses = append(diagnoses, p.Flush()...)
	wall := time.Since(began)

	rows := browser.Breakdown(diagnoses, bgpflap.DisplayLabel)
	fmt.Printf("\n%d flaps diagnosed live in %v wall time; worst event-time lag %v\n",
		len(diagnoses), wall.Round(time.Millisecond), worstLag.Round(time.Second))
	fmt.Println("top causes:")
	for i, r := range rows {
		if i >= 4 {
			break
		}
		fmt.Printf("  %-40s %6.2f%%\n", r.Label, r.Percent)
	}
}
