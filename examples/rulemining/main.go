// Rule mining via statistical correlation (paper §IV-B, Fig. 7): a hidden
// vendor bug makes provisioning activity flap unrelated customer BGP
// sessions through CPU exhaustion. Manual inspection cannot spot it among
// hundreds of ordinary flaps — but prefiltering the flaps by their
// engine-diagnosed root cause ("CPU-related, no link evidence") and running
// the NICE circular-permutation test against every candidate signature
// series surfaces the provisioning correlation, exactly as the interaction
// between the Generic RCA Engine and the Correlation Tester did in the
// paper.
//
//	go run ./examples/rulemining
package main

import (
	"fmt"
	"log"
	"time"

	"grca/internal/apps/bgpflap"
	"grca/internal/browser"
	"grca/internal/engine"
	"grca/internal/event"
	"grca/internal/platform"
	"grca/internal/simnet"
)

func main() {
	dataset, err := simnet.Generate(simnet.Config{
		Seed:                     99,
		PoPs:                     4,
		PERsPerPoP:               2,
		SessionsPerPER:           12,
		Duration:                 21 * 24 * time.Hour,
		BGPFlapIncidents:         700,
		ProvisioningBugIncidents: 50,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Generic signature series ("syslog:*", "workflow:*") are the
	// candidate population.
	sys, err := platform.FromDataset(dataset, platform.Options{GenericSignatures: true})
	if err != nil {
		log.Fatal(err)
	}
	eng, err := bgpflap.NewEngine(sys.Store, sys.View)
	if err != nil {
		log.Fatal(err)
	}
	diagnoses := eng.DiagnoseAll()

	cpuRelated := browser.Filter(diagnoses, func(d engine.Diagnosis) bool {
		hte, cpu, link := false, false, false
		d.Root.Walk(func(n *engine.Node) {
			switch n.Event {
			case event.EBGPHoldTimerExpired:
				hte = true
			case event.CPUHighSpike, event.CPUHighAverage:
				cpu = true
			case event.InterfaceFlap, event.LineProtoFlap:
				link = true
			}
		})
		return hte && cpu && !link
	})
	fmt.Printf("%d flaps total; %d CPU-related after engine prefiltering\n",
		len(diagnoses), len(cpuRelated))

	miner := browser.Miner{Store: sys.Store, Bin: time.Minute, Smooth: 5}
	candidates := miner.CandidateSeries("syslog:", "workflow:")
	window := dataset.Config.Duration

	run := func(label string, ds []engine.Diagnosis) float64 {
		var symptoms []*event.Instance
		for _, d := range ds {
			symptoms = append(symptoms, d.Symptom)
		}
		results, err := miner.Mine(symptoms, candidates,
			dataset.Config.Start, dataset.Config.Start.Add(window))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s — %d candidate series, %d significant; top hits:\n",
			label, len(candidates), len(browser.Significant(results)))
		provScore := 0.0
		for i, r := range results {
			if i < 5 {
				fmt.Printf("  %-42s score %6.2f significant=%v\n",
					r.Series, r.Result.Score, r.Result.Significant)
			}
			if r.Series == "workflow:provision-customer" {
				provScore = r.Result.Score
			}
		}
		return provScore
	}

	pre := run("Prefiltered (CPU-related flaps only)", cpuRelated)
	all := run("Unfiltered (all flaps)", diagnoses)
	fmt.Printf("\nprovisioning-activity correlation score: %.1f prefiltered vs %.1f unfiltered\n", pre, all)
	fmt.Println("=> prefiltering by diagnosed root cause amplifies the hidden signal (Fig. 7)")
}
