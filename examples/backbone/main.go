// In-network packet-loss study (the paper's §I motivating scenario):
// probe traffic between PoPs reports sporadic losses over a month; the
// aggregate root-cause breakdown drives the engineering decision — link
// congestion calls for capacity augmentation, routing re-convergence for
// MPLS fast reroute.
//
//	go run ./examples/backbone
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"grca/internal/apps/backbone"
	"grca/internal/browser"
	"grca/internal/engine"
	"grca/internal/platform"
	"grca/internal/simnet"
)

func main() {
	dataset, err := simnet.Generate(simnet.Config{
		Seed:              21,
		PoPs:              4,
		PERsPerPoP:        2,
		SessionsPerPER:    4,
		Duration:          28 * 24 * time.Hour,
		BackboneIncidents: 300,
	})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := platform.FromDataset(dataset, platform.Options{})
	if err != nil {
		log.Fatal(err)
	}
	eng, err := backbone.NewEngine(sys.Store, sys.View)
	if err != nil {
		log.Fatal(err)
	}
	diagnoses := eng.DiagnoseAll()

	rows := browser.Breakdown(diagnoses, backbone.DisplayLabel)
	if err := browser.WriteTable(os.Stdout,
		"Root Cause Breakdown of In-Network Packet Loss (§I scenario)", rows); err != nil {
		log.Fatal(err)
	}
	score := platform.ScoreDiagnoses(dataset.Truth, "backbone", diagnoses, 10*time.Minute)
	fmt.Printf("\n%d loss events over %d probe pairs; accuracy %.1f%%\n",
		len(diagnoses), len(dataset.ProbePairs), 100*score.Accuracy())
	fmt.Printf("\nengineering decision: %s\n", backbone.Recommend(engine.Breakdown(diagnoses)))
}
