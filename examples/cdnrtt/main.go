// CDN service-impairment study (paper §III-B, Table VI): simulate a month
// of end-to-end RTT measurements between client agents and a CDN node,
// degrade them with a Table VI mix of causes (most outside the ISP), run
// the packaged CDN RCA application, and print the breakdown.
//
// This example also shows a single-event drill-down: the engine's evidence
// chain for one diagnosed egress-change degradation, reconstructed from
// historical BGP and OSPF data alone (the paper's peering-failure story).
//
//	go run ./examples/cdnrtt
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"grca/internal/apps/cdn"
	"grca/internal/browser"
	"grca/internal/cdnassign"
	"grca/internal/engine"
	"grca/internal/event"
	"grca/internal/platform"
	"grca/internal/simnet"
)

func main() {
	dataset, err := simnet.Generate(simnet.Config{
		Seed:           7,
		PoPs:           4,
		PERsPerPoP:     2,
		SessionsPerPER: 6,
		Duration:       14 * 24 * time.Hour,
		CDNIncidents:   400,
	})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := platform.FromDataset(dataset, platform.Options{})
	if err != nil {
		log.Fatal(err)
	}
	eng, err := cdn.NewEngine(sys.Store, sys.View)
	if err != nil {
		log.Fatal(err)
	}

	began := time.Now()
	diagnoses := eng.DiagnoseAll()
	elapsed := time.Since(began)

	rows := browser.Breakdown(diagnoses, cdn.DisplayLabel)
	if err := browser.WriteTable(os.Stdout,
		"Root Cause Breakdown of End-to-End RTT Degradations (cf. Table VI)", rows); err != nil {
		log.Fatal(err)
	}
	score := platform.ScoreDiagnoses(dataset.Truth, "cdn", diagnoses, 10*time.Minute)
	fmt.Printf("\n%d degradations diagnosed in %v (%v/event); accuracy %.1f%%\n",
		len(diagnoses), elapsed.Round(time.Millisecond),
		(elapsed / time.Duration(max(1, len(diagnoses)))).Round(time.Microsecond),
		100*score.Accuracy())

	// Drill into the first egress-change diagnosis, then plan the §III-B.2
	// repair: while the network team fixes the failure, the CDN team can
	// move impacted users to the node that is closer under the *new*
	// routing by updating the DNS tables.
	for _, d := range diagnoses {
		if d.Primary() != event.BGPEgressChange {
			continue
		}
		planRepair(dataset, sys, d)
		fmt.Printf("\nExample diagnosis (the paper's peering-failure story):\n")
		fmt.Printf("  symptom: %s\n", d.Symptom)
		var dump func(n *engine.Node, depth int)
		dump = func(n *engine.Node, depth int) {
			for _, c := range n.Children {
				fmt.Printf("  %*s<- %s", depth*2, "", c.Instance)
				if old, new := c.Instance.Attr("old"), c.Instance.Attr("new"); old != "" {
					fmt.Printf("  [egress %s -> %s]", old, new)
				}
				fmt.Println()
				dump(c, depth+1)
			}
		}
		dump(d.Root, 1)
		break
	}
}

// planRepair stands up a second CDN node at the far PoP and asks the
// assignment service whether impacted users should be moved there under
// the post-failure routing.
func planRepair(dataset *simnet.Dataset, sys *platform.System, d engine.Diagnosis) {
	altPoP := dataset.PeerEgresses[1]
	altNode := "cdn-alt"
	sys.View.RegisterServer(altNode+"-s1", altNode, altPoP)
	svc, err := cdnassign.New(sys.View, []cdnassign.Node{
		{Name: dataset.CDNNode, Router: dataset.CDNRouter},
		{Name: altNode, Router: altPoP},
	})
	if err != nil {
		log.Fatal(err)
	}
	before := d.Symptom.Start.Add(-10 * time.Minute)
	after := d.Symptom.Start.Add(time.Minute)
	repairs, err := svc.PlanRepairs(dataset.Agents, before, after)
	if err != nil {
		log.Fatal(err)
	}
	if len(repairs) == 0 {
		fmt.Println("\nDNS repair plan: no agent improves by moving (the detour is symmetric here)")
		return
	}
	fmt.Println("\nDNS repair plan (apply while the network repair is in flight):")
	for _, r := range repairs {
		fmt.Printf("  move %s: %s -> %s (IGP distance saving %d)\n",
			r.Client, r.From.Name, r.To.Name, r.Saving)
	}
}
