// Unobservable root cause via Bayesian inference (paper §IV-C, Fig. 8): a
// line card crashes and every eBGP session it carries flaps within three
// minutes. No log identifies the card — the root cause is unobservable.
// Rule-based reasoning attributes each flap to its own interface flap; the
// Bayesian engine, classifying the same-card group of flaps jointly,
// identifies the Line-card Issue, as it identified the paper's 133-flap
// crash.
//
//	go run ./examples/linecard
package main

import (
	"fmt"
	"log"
	"time"

	"grca/internal/apps/bgpflap"
	"grca/internal/platform"
	"grca/internal/simnet"
)

func main() {
	dataset, err := simnet.Generate(simnet.Config{
		Seed:             4,
		PoPs:             3,
		PERsPerPoP:       2,
		SessionsPerPER:   16,
		Duration:         7 * 24 * time.Hour,
		BGPFlapIncidents: 250,
		LineCardCrash:    true,
	})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := platform.FromDataset(dataset, platform.Options{})
	if err != nil {
		log.Fatal(err)
	}
	eng, err := bgpflap.NewEngine(sys.Store, sys.View)
	if err != nil {
		log.Fatal(err)
	}
	diagnoses := eng.DiagnoseAll()
	fmt.Printf("%d eBGP flaps diagnosed (rule-based)\n", len(diagnoses))

	cfg, err := bgpflap.BayesConfig()
	if err != nil {
		log.Fatal(err)
	}
	groups := bgpflap.GroupByCard(sys.Topo, diagnoses, 3*time.Minute)
	fmt.Printf("%d (card, 3-minute-window) groups\n\n", len(groups))

	for _, g := range groups {
		res, err := bgpflap.ClassifyGroup(cfg, g, 4)
		if err != nil {
			log.Fatal(err)
		}
		if res.Best != bgpflap.ClassLineCard {
			continue
		}
		fmt.Printf("line card %s at %s: %d flaps within 3 minutes\n",
			g.Card, g.Start.Format(time.DateTime), len(g.Diagnoses))
		ruleLabels := map[string]int{}
		sessions := map[string]bool{}
		for _, d := range g.Diagnoses {
			ruleLabels[d.Primary()]++
			sessions[d.Symptom.Loc.String()] = true
		}
		fmt.Printf("  distinct sessions: %d\n", len(sessions))
		fmt.Printf("  rule-based verdicts: %v\n", ruleLabels)
		fmt.Printf("  Bayesian verdict:    %s\n", res.Best)
		for _, s := range res.Ranked {
			fmt.Printf("    %-18s log-odds %8.1f\n", s.Class, s.LogOdds)
		}
	}
}
