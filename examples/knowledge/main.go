// Iterative domain-knowledge building (paper §IV-A): operators start with
// an inaccurate, incomplete diagnosis graph and whittle down the
// unexplained symptoms by drilling into them, spotting overlooked
// signatures, and codifying new rules.
//
// This example replays that loop for the PIM application: it starts from a
// one-rule graph (only configuration changes are known), measures the
// unexplained share, drills into a sample of unexplained adjacency changes
// with the Result Browser to reveal what co-occurs with them, and adds the
// revealed rules in the order a domain expert would — watching the
// unexplained share collapse from ~95% to ~2%, the §III-C.2 end state.
//
//	go run ./examples/knowledge
package main

import (
	"fmt"
	"log"
	"time"

	"grca/internal/apps/pim"
	"grca/internal/browser"
	"grca/internal/dgraph"
	"grca/internal/engine"
	"grca/internal/event"
	"grca/internal/locus"
	"grca/internal/platform"
	"grca/internal/simnet"
)

func main() {
	dataset, err := simnet.Generate(simnet.Config{
		Seed: 8, PoPs: 4, PERsPerPoP: 2, SessionsPerPER: 10,
		MVPNFraction: 0.35, Duration: 14 * 24 * time.Hour, PIMIncidents: 400,
	})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := platform.FromDataset(dataset, platform.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// The complete application is our pool of "expert knowledge"; the
	// loop adds its rules one discovery at a time.
	_, full, err := pim.Build()
	if err != nil {
		log.Fatal(err)
	}
	ruleFor := map[string]dgraph.Graph{}
	_ = ruleFor

	// Iteration 0: the developer only knows that provisioning changes
	// drop adjacencies.
	g := dgraph.New(event.PIMAdjacencyChange)
	addRule := func(diagnostic string) {
		for _, r := range full.RulesFor(event.PIMAdjacencyChange) {
			if r.Diagnostic == diagnostic {
				if err := g.Add(r); err != nil {
					log.Fatal(err)
				}
				return
			}
		}
		log.Fatalf("no rule for %q", diagnostic)
	}
	addRule(event.PIMConfigChange)

	discoveryOrder := []string{
		event.InterfaceFlap,
		event.OSPFReconvergence,
		event.RouterCostInOut,
		event.LinkCostOutDown,
		event.LinkCostInUp,
		event.PIMUplinkAdjacencyChange,
	}

	eng := engine.New(sys.Store, sys.View, g)
	fmt.Println("iteration  rules  unexplained  discovery (next rule to add)")
	for round := 0; ; round++ {
		ds := eng.DiagnoseAll()
		unexplained := browser.Filter(ds, browser.Unexplained())
		pct := 100 * float64(len(unexplained)) / float64(len(ds))

		next := ""
		if round < len(discoveryOrder) {
			next = discoveryOrder[round]
		}
		fmt.Printf("%9d  %5d  %10.1f%%  %s\n", round, g.Len(), pct, next)
		if next == "" {
			break
		}

		// "Drill into a sample of unexplained events": sample until one
		// reveals co-located signatures (some events are genuinely
		// unexplainable — the operator moves on to the next).
		if round == 0 {
			for i, diag := range unexplained {
				if i >= 10 {
					break
				}
				related, err := browser.DrillDown(sys.Store, sys.View, diag.Symptom, 2*time.Minute, locus.Router)
				if err != nil || len(related) == 0 {
					continue
				}
				fmt.Printf("           drill-down around %s:\n", diag.Symptom)
				for j, in := range related {
					if j >= 4 {
						break
					}
					fmt.Printf("             saw %s\n", in)
				}
				break
			}
		}
		addRule(next)
	}
	fmt.Println("\nEach discovered rule was codified and the tool re-run — the §IV-A loop.")
}
