// Quickstart: the smallest end-to-end G-RCA run.
//
// It defines a one-rule RCA application in the rule-specification
// language, stores a handful of event instances (the paper's worked
// temporal example: an eBGP flap 180 s after an interface flap), and asks
// the engine for the root cause.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"grca/internal/dgraph"
	"grca/internal/engine"
	"grca/internal/event"
	"grca/internal/locus"
	"grca/internal/rulespec"
	"grca/internal/store"
	"grca/internal/testnet"
)

const spec = `
# A miniature BGP-flap application: one application event, one rule from
# scratch, one rule pulled from the Knowledge Library catalogue.
app "quickstart" root "eBGP flap"

event "eBGP flap" {
    loctype  router:neighbor
    source   syslog
    desc     "eBGP session goes down and comes up"
}

rule "eBGP flap" <- "Interface flap" {
    priority 180
    join     interface
    symptom  start/start expand 185s 10s   # the BGP hold timer plus syslog fuzz
    diag     start/end   expand 5s 5s
}

use "Interface flap" <- "SONET restoration" priority 190
`

func main() {
	// A small three-PoP test network provides topology and routing.
	net := testnet.Build(log.Fatalf)

	// Parse and build the application against the Knowledge Library.
	parsed, err := rulespec.Parse(spec)
	if err != nil {
		log.Fatal(err)
	}
	_, graph, err := parsed.Build(event.Knowledge(), dgraph.Knowledge())
	if err != nil {
		log.Fatal(err)
	}

	// Store three event instances: the symptom, its direct cause, and the
	// layer-1 event below that.
	st := store.New()
	t0 := testnet.T0
	ifc, _ := net.Topo.InterfaceByName("chi-per1", "to-custB")

	flapStart := t0.Add(1000 * time.Second)
	symptom := st.Add(event.Instance{
		Name:  "eBGP flap",
		Start: flapStart, End: flapStart.Add(60 * time.Second),
		Loc: locus.Between(locus.RouterNeighbor, "chi-per1", ifc.PeerIP.String()),
	})
	st.Add(event.Instance{
		Name:  event.InterfaceFlap,
		Start: t0.Add(900 * time.Second), End: t0.Add(901 * time.Second),
		Loc: locus.Between(locus.Interface, "chi-per1", "to-custB"),
	})
	st.Add(event.Instance{
		Name:  event.SONETRestoration,
		Start: t0.Add(899 * time.Second), End: t0.Add(899 * time.Second),
		Loc: locus.At(locus.Layer1Device, "sonet-chi-per1-a"),
	})

	// Diagnose.
	eng := engine.New(st, net.View, graph)
	d := eng.Diagnose(symptom)

	fmt.Println("symptom:   ", d.Symptom)
	fmt.Println("root cause:", d.Label())
	for _, c := range d.Causes {
		fmt.Printf("  chain: %s -> %v (priority %d, %d evidence instance(s))\n",
			d.Symptom.Name, c.Chain, c.Priority, len(c.Instances))
	}
	fmt.Printf("diagnosed in %v\n", d.Elapsed.Round(time.Microsecond))
}
