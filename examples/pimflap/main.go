// PIM adjacency-change study (paper §III-C, Table VIII): simulate two
// weeks of MVPN operation, inject a Table VIII mix of adjacency-change
// causes, run the packaged PIM RCA application, and report the breakdown
// and classification rate (the paper classifies >98% of events).
//
//	go run ./examples/pimflap
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"grca/internal/apps/pim"
	"grca/internal/browser"
	"grca/internal/engine"
	"grca/internal/platform"
	"grca/internal/simnet"
)

func main() {
	dataset, err := simnet.Generate(simnet.Config{
		Seed:           3,
		PoPs:           4,
		PERsPerPoP:     2,
		SessionsPerPER: 10,
		MVPNFraction:   0.35,
		Duration:       14 * 24 * time.Hour,
		PIMIncidents:   500,
	})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := platform.FromDataset(dataset, platform.Options{})
	if err != nil {
		log.Fatal(err)
	}
	eng, err := pim.NewEngine(sys.Store, sys.View)
	if err != nil {
		log.Fatal(err)
	}

	began := time.Now()
	diagnoses := eng.DiagnoseAll()
	elapsed := time.Since(began)

	rows := browser.Breakdown(diagnoses, pim.DisplayLabel)
	if err := browser.WriteTable(os.Stdout,
		"Root Cause Breakdown of PIM Adjacency Losses (cf. Table VIII)", rows); err != nil {
		log.Fatal(err)
	}

	classified := 0
	for _, d := range diagnoses {
		if d.Primary() != engine.Unknown {
			classified++
		}
	}
	score := platform.ScoreDiagnoses(dataset.Truth, "pim", diagnoses, 2*time.Minute)
	fmt.Printf("\n%d adjacency changes diagnosed in %v; %.1f%% classified (paper: >98%%); accuracy %.1f%%\n",
		len(diagnoses), elapsed.Round(time.Millisecond),
		100*float64(classified)/float64(len(diagnoses)), 100*score.Accuracy())
}
