// Fault-injection accuracy matrix: perturb a simulated corpus with each
// chaos fault class in turn — per-router clock skew, record reordering,
// duplication, mid-line truncation, dropped feeds, delayed delivery —
// re-run the packaged RCA applications over the dirty data, and print how
// far each fault pushed top-cause accuracy off the clean baseline. The
// paper's deployment survived feeds like these (§II-A); here the damage is
// measured against ground truth instead of anecdotes.
//
//	go run ./examples/chaos
package main

import (
	"fmt"
	"log"
	"time"

	"grca/internal/chaos"
	"grca/internal/platform"
	"grca/internal/simnet"
)

func main() {
	dataset, err := simnet.Generate(simnet.Config{
		Seed: 12, PoPs: 3, PERsPerPoP: 2, SessionsPerPER: 8,
		MVPNFraction: 0.4, Duration: 4 * 24 * time.Hour,
		BGPFlapIncidents: 80, CDNIncidents: 40, PIMIncidents: 40,
	})
	if err != nil {
		log.Fatal(err)
	}
	bundle := platform.BundleFromDataset(dataset)

	rep, err := chaos.RunMatrix(bundle, chaos.Config{Seed: 99}, chaos.Options{
		Apps:       []string{"bgpflap", "cdn", "pim"},
		MaxPending: 256,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("chaos matrix, injection seed %d (re-run: identical output)\n\n", rep.Seed)
	fmt.Printf("%-12s %-9s %9s %10s %10s\n", "fault", "app", "accuracy", "drop", "detection")
	for _, sc := range rep.Clean {
		fmt.Printf("%-12s %-9s %8.1f%% %10s %9.1f%%\n",
			"(clean)", sc.App, 100*sc.Score.Accuracy, "—", 100*sc.Score.Detection)
	}
	for _, scen := range rep.Scenarios {
		fmt.Println()
		for _, sc := range scen.Apps {
			fmt.Printf("%-12s %-9s %8.1f%% %9.1f%% %9.1f%%\n",
				scen.Fault, sc.App, 100*sc.Score.Accuracy, 100*sc.AccuracyDrop, 100*sc.Score.Detection)
		}
		switch chaos.Fault(scen.Fault) {
		case chaos.FaultTruncate:
			fmt.Printf("             (%d lines arrived malformed and were tallied, not fatal)\n", scen.Malformed)
		case chaos.FaultDropSource:
			fmt.Printf("             (dropped feeds: %v)\n", scen.Dropped)
		case chaos.FaultDelay:
			s := scen.Apps[0].Stream
			fmt.Printf("             (bgpflap stream: %d delivered, %d delayed, %d past grace, %d forced out)\n",
				s.Delivered, s.Delayed, s.Late, s.Forced)
		}
	}

	fmt.Println("\ndocumented per-fault accuracy bounds (enforced by the scenario-matrix tests):")
	for _, f := range chaos.AllFaults() {
		fmt.Printf("  %-12s ≤ %.0f%% drop\n", f, 100*chaos.Bounds[f])
	}
}
