// BGP-flap study (paper §III-A, Table IV): simulate a month of customer
// eBGP session flaps across an ISP, run the packaged BGP-flap RCA
// application, and print the root-cause breakdown alongside the injected
// ground truth — the comparison the paper's operators could not make.
//
//	go run ./examples/bgpflap
package main

import (
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"grca/internal/apps/bgpflap"
	"grca/internal/browser"
	"grca/internal/platform"
	"grca/internal/simnet"
)

func main() {
	dataset, err := simnet.Generate(simnet.Config{
		Seed:             2010,
		PoPs:             4,
		PERsPerPoP:       2,
		SessionsPerPER:   12,
		Duration:         14 * 24 * time.Hour,
		BGPFlapIncidents: 800,
	})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := platform.FromDataset(dataset, platform.Options{})
	if err != nil {
		log.Fatal(err)
	}
	eng, err := bgpflap.NewEngine(sys.Store, sys.View)
	if err != nil {
		log.Fatal(err)
	}

	began := time.Now()
	diagnoses := eng.DiagnoseAll()
	elapsed := time.Since(began)

	rows := browser.Breakdown(diagnoses, bgpflap.DisplayLabel)
	if err := browser.WriteTable(os.Stdout, "Root Cause Breakdown of BGP Flaps (cf. Table IV)", rows); err != nil {
		log.Fatal(err)
	}

	score := platform.ScoreDiagnoses(dataset.Truth, "bgp", diagnoses, 2*time.Minute)
	fmt.Printf("\n%d flaps diagnosed in %v (%v/event); ground-truth accuracy %.1f%%\n",
		len(diagnoses), elapsed.Round(time.Millisecond),
		(elapsed / time.Duration(len(diagnoses))).Round(time.Microsecond),
		100*score.Accuracy())

	// The injected mix, for comparison with the diagnosed table.
	fmt.Println("\nInjected ground-truth mix:")
	mix := dataset.TruthBreakdown("bgp")
	kinds := make([]string, 0, len(mix))
	for k := range mix {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return mix[kinds[i]] > mix[kinds[j]] })
	for _, k := range kinds {
		fmt.Printf("  %-46s %6.2f%%\n", k, mix[k])
	}
}
