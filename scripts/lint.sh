#!/usr/bin/env bash
# lint.sh — the repository's full lint gate, identical locally and in CI.
#
# Usage: scripts/lint.sh [artifact.json]
#
# Runs, in order: gofmt (whole tree, including testdata exemplars),
# go vet, the grcalint analyzer suite (style + concurrency-correctness
# checks; findings also written as a JSON envelope artifact when a path
# is given), and grca vet -strict over the built-in and example specs.
# Exits non-zero on the first failing stage; a zero exit means zero
# findings everywhere.
set -u
cd "$(dirname "$0")/.."

artifact="${1:-}"
fail=0

echo "== gofmt =="
out=$(gofmt -l .)
if [ -n "$out" ]; then
  echo "gofmt needed on:" >&2
  echo "$out" >&2
  fail=1
fi

echo "== go vet =="
go vet ./... || fail=1

echo "== grcalint (analyzer suite) =="
if [ -n "$artifact" ]; then
  # Capture the JSON envelope for downstream tooling regardless of
  # outcome; the human-readable pass decides the exit status.
  go run ./cmd/grcalint -json >"$artifact" || true
fi
go run ./cmd/grcalint || fail=1

echo "== grca vet -strict (builtins) =="
go run ./cmd/grca vet -strict || fail=1

echo "== grca vet -strict (example specs) =="
go run ./cmd/grca vet -strict examples/specs/*.grca || fail=1

if [ "$fail" -ne 0 ]; then
  echo "lint: FAILED" >&2
  exit 1
fi
echo "lint: clean"
