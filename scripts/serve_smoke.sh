#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke test of `grca serve`:
#   1. generate a simulated corpus
#   2. start the service sharded (-shards=4 by default), load the corpus
#      over HTTP, finalize
#   3. stream normalized events with grca-load over BOTH ingest
#      encodings (JSON and the binary wire format), recording each
#      throughput and the /v1/breakdown latency at a small and a ~10x
#      larger store (the rollup keeps it flat; the ratio is gated)
#   4. exercise the Result Browser: breakdown, trend, drilldown, and one
#      SSE diagnosis event, failing on non-200 or empty aggregates
#   5. diagnose, SIGTERM, restart (timed), and assert the event count,
#      the diagnosis bytes, and the breakdown bytes survived the restart
#   6. replication: restart the primary, attach a live read replica
#      (-replica-of), stream 100k more events while the replica applies
#      them and grca-load reads from it (-read-from), record catch-up
#      time and replica read latencies, byte-compare /v1/breakdown
#      between the two nodes, then SIGKILL the primary, `grca promote`
#      the replica, byte-compare its breakdown against the pre-kill
#      snapshot, and assert the promoted node accepts writes
#   7. repeat the binary stream against a fresh -shards=1 data dir and
#      gate the sharded/single speedup (>= SERVE_SMOKE_MIN_SHARD_RATIO,
#      only when the box has >= 4 cores — shards can't beat one commit
#      lane without cores to run on)
#   8. gate events/s per encoding against the committed BENCH_SERVE.json
#      (>10% regression fails; override with SERVE_SMOKE_MAX_REGRESSION)
#
# Usage: scripts/serve_smoke.sh [out.json]
#   out.json  where to write the throughput report (default BENCH_SERVE.json)
set -euo pipefail

OUT="${1:-BENCH_SERVE.json}"
ADDR="127.0.0.1:18080"
BASE="http://$ADDR"
ADDR2="127.0.0.1:18081"
BASE2="http://$ADDR2"
WORK="$(mktemp -d)"
SERVE_PID=""
REPLICA_PID=""
MIN_EPS="${SERVE_SMOKE_MIN_EPS:-20000}"
# The rollup answers /v1/breakdown from pre-computed counters, so p99
# must stay roughly flat as the store grows ~10x. The gate is lenient
# (sub-ms latencies are noisy on shared CI boxes).
MAX_P99_RATIO="${SERVE_SMOKE_MAX_P99_RATIO:-1.5}"
# Allowed fractional events/s drop per encoding vs the committed report
# (0.10 = fail on >10% regression). CI runners with unpredictable
# neighbors relax this and rely on the absolute MIN_EPS floor.
MAX_REGRESSION="${SERVE_SMOKE_MAX_REGRESSION:-0.10}"
# Shard count for the main run, and the binary-ingest speedup the sharded
# run must show over a single-shard run of the same stream. The ratio is
# gated only on boxes with >= 4 cores; the measured value is always
# recorded in the report alongside `cores`/`gomaxprocs` so a reader can
# judge a 1-core CI number for what it is.
SHARDS="${SERVE_SMOKE_SHARDS:-4}"
MIN_SHARD_RATIO="${SERVE_SMOKE_MIN_SHARD_RATIO:-1.8}"
CORES=$(nproc)
GOMAXPROCS_EFF="${GOMAXPROCS:-$CORES}"

# Capture the committed baseline before this run overwrites it.
BASELINE=""
if [ -f "$OUT" ]; then
  BASELINE="$WORK/baseline.json"
  mkdir -p "$WORK"
  cp "$OUT" "$BASELINE"
fi

cleanup() {
  for pid in "$SERVE_PID" "$REPLICA_PID"; do
    if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
      kill -TERM "$pid" 2>/dev/null || true
      wait "$pid" 2>/dev/null || true
    fi
  done
  rm -rf "$WORK"
}
trap cleanup EXIT

wait_phase() { # wait_phase <phase> — poll /healthz until the phase matches
  want="$1"
  for _ in $(seq 1 400); do
    got=$(curl -fsS "$BASE/healthz" 2>/dev/null | python3 -c 'import json,sys; print(json.load(sys.stdin)["phase"])' 2>/dev/null || true)
    [ "$got" = "$want" ] && return 0
    sleep 0.05
  done
  echo "serve_smoke: timed out waiting for phase $want" >&2
  exit 1
}

# Run the built binary directly: `go run` would receive the SIGTERM
# itself and die without forwarding it to the server.
start_serve() { # start_serve [datadir] [shards]
  "$WORK/bin/grca" serve -addr "$ADDR" -data-dir "${1:-$WORK/data}" -bundle "$WORK/corpus" \
    -fsync batch -shards "${2:-$SHARDS}" &
  SERVE_PID=$!
}

stop_serve() { # graceful SIGTERM drain
  kill -TERM "$SERVE_PID"
  wait "$SERVE_PID"
  SERVE_PID=""
}

echo "== building binaries + generating corpus"
go build ./...
go build -o "$WORK/bin/" ./cmd/grca ./cmd/grca-load ./cmd/grca-sim
"$WORK/bin/grca-sim" -out "$WORK/corpus" -seed 7 -pops 3 -pers 2 -sessions 6 -days 2 -bgp 80 -cdn 40 -pim 0

echo "== starting serve"
start_serve
wait_phase loading

PROBE="/v1/breakdown?app=bgpflap"
echo "== loading feeds + streaming 10k events (small-store breakdown probe)"
"$WORK/bin/grca-load" -addr "$BASE" -bundle "$WORK/corpus" -events 10000 -batch 1000 -c 4 \
  -probe "$PROBE" -probes 300 -o "$WORK/load-small.json"
wait_phase serving

echo "== streaming 90k more events over JSON ingest"
"$WORK/bin/grca-load" -addr "$BASE" -events 90000 -batch 1000 -c 4 \
  -wire json -o "$WORK/load-json.json"

echo "== streaming 90k more events over binary wire ingest (large-store breakdown probe)"
"$WORK/bin/grca-load" -addr "$BASE" -events 90000 -batch 1000 -c 4 \
  -wire binary -probe "$PROBE" -probes 300 -o "$WORK/load-binary.json"

echo "== exercising the Result Browser endpoints"
browse() { # browse <path> <python-expr over parsed json r> <label>
  local body
  body=$(curl -fsS "$BASE$1") || { echo "serve_smoke: FAIL — GET $1" >&2; exit 1; }
  echo "$body" | python3 -c "import json,sys; r=json.load(sys.stdin); assert $2, '$3: '+json.dumps(r)[:200]" \
    || { echo "serve_smoke: FAIL — $3 ($1)" >&2; exit 1; }
}
browse "/v1/breakdown?app=bgpflap" 'r["total"] > 0 and len(r["rows"]) > 0' "empty breakdown"
browse "/v1/trend?name=eBGP%20flap&bin=1h" 'sum(p["count"] for p in r["points"]) > 0' "empty trend"
browse "/v1/causes?app=bgpflap" 'len(r["causes"]) > 0' "empty causes"
SYM_ID=$(curl -fsS -X POST "$BASE/v1/diagnose" -d '{"app":"bgpflap","all":true}' \
  | python3 -c 'import json,sys; print(json.load(sys.stdin)["diagnoses"][0]["symptom"]["id"])')
browse "/v1/drilldown/$SYM_ID" 'r["diagnosis"]["label"] and r["trace"]' "empty drilldown"

# One SSE event: the ring holds live streaming diagnoses only (the 100k
# interface-up events stream none), so trigger one — a symptom plus a
# tick event that advances the stream clock past its grace window — then
# read it back with a replay catch-up.
NOW_END=$(curl -fsS "$BASE/v1/events" | python3 -c 'import json,sys; print(json.load(sys.stdin)["span"]["last"])')
python3 - "$NOW_END" > "$WORK/sse-batch.json" <<'PYEOF'
import json, sys, datetime
last = datetime.datetime.fromisoformat(sys.argv[1].replace("Z", "+00:00"))
at = last + datetime.timedelta(hours=1)
iso = lambda t: t.strftime("%Y-%m-%dT%H:%M:%SZ")
print(json.dumps({"events": [
  {"name": "eBGP flap", "start": iso(at), "end": iso(at + datetime.timedelta(minutes=1)),
   "loc": {"type": "router:neighbor", "a": "pop00-per1", "b": "10.99.0.1"}},
  {"name": "synthetic tick", "start": iso(at + datetime.timedelta(hours=48)),
   "end": iso(at + datetime.timedelta(hours=48)), "loc": {"type": "router", "a": "pop00-per1"}},
]}))
PYEOF
curl -fsS -X POST "$BASE/v1/ingest" --data-binary @"$WORK/sse-batch.json" > /dev/null
# --max-time bounds the open-ended stream; curl's timeout complaint
# after the frame arrived is expected noise.
SSE_LINE=$(curl -fsS -N --max-time 10 "$BASE/v1/stream?replay=5" 2>/dev/null | grep -m1 '^data: ' || true)
if [ -z "$SSE_LINE" ]; then
  echo "serve_smoke: FAIL — no SSE diagnosis event on /v1/stream" >&2
  exit 1
fi
echo "${SSE_LINE#data: }" | python3 -c 'import json,sys; r=json.load(sys.stdin); assert r["seq"] >= 1 and r["app"], r' \
  || { echo "serve_smoke: FAIL — malformed SSE diagnosis frame" >&2; exit 1; }
echo "   SSE diagnosis received: $(echo "${SSE_LINE#data: }" | python3 -c 'import json,sys; r=json.load(sys.stdin); print("seq", r["seq"], r["app"], r["label"])')"

curl -fsS "$BASE/v1/breakdown?app=bgpflap" > "$WORK/breakdown-before.json"
EVENTS_BEFORE=$(curl -fsS "$BASE/v1/events" | python3 -c 'import json,sys; print(json.load(sys.stdin)["events"])')
curl -fsS -X POST "$BASE/v1/diagnose" -d '{"app":"bgpflap","all":true}' > "$WORK/diag-before.json"
echo "   $EVENTS_BEFORE events stored; $(python3 -c 'import json;print(len(json.load(open("'"$WORK"'/diag-before.json"))["diagnoses"]))') bgpflap diagnoses"

echo "== SIGTERM + restart (timed)"
stop_serve
RESTART_T0=$(date +%s.%N)
start_serve
wait_phase serving
RESTART_T1=$(date +%s.%N)
RESTART_SECONDS=$(python3 -c "print(round($RESTART_T1 - $RESTART_T0, 3))")

EVENTS_AFTER=$(curl -fsS "$BASE/v1/events" | python3 -c 'import json,sys; print(json.load(sys.stdin)["events"])')
curl -fsS -X POST "$BASE/v1/diagnose" -d '{"app":"bgpflap","all":true}' > "$WORK/diag-after.json"

if [ "$EVENTS_BEFORE" != "$EVENTS_AFTER" ]; then
  echo "serve_smoke: FAIL — event count $EVENTS_BEFORE before restart, $EVENTS_AFTER after" >&2
  exit 1
fi
if ! cmp -s "$WORK/diag-before.json" "$WORK/diag-after.json"; then
  echo "serve_smoke: FAIL — diagnosis output changed across restart" >&2
  exit 1
fi
curl -fsS "$BASE/v1/breakdown?app=bgpflap" > "$WORK/breakdown-after.json"
if ! cmp -s "$WORK/breakdown-before.json" "$WORK/breakdown-after.json"; then
  echo "serve_smoke: FAIL — /v1/breakdown changed across restart (rollup rebuild not deterministic)" >&2
  diff "$WORK/breakdown-before.json" "$WORK/breakdown-after.json" >&2 || true
  exit 1
fi
echo "== restart preserved $EVENTS_AFTER events, identical diagnoses and breakdown"

# ---- replication: live read replica, catch-up, SIGKILL failover ----
# The primary from the restart phase is still serving; attach a replica
# to it. (A replica is bound to one primary incarnation: it ships that
# boot's journals/WALs and must resync if the primary restarts.)
echo "== attaching a live read replica (-replica-of)"
"$WORK/bin/grca" serve -addr "$ADDR2" -data-dir "$WORK/data-replica" -bundle "$WORK/corpus" \
  -fsync batch -shards "$SHARDS" -replica-of "$BASE" -replica-poll 5ms &
REPLICA_PID=$!
for _ in $(seq 1 400); do
  curl -fsS "$BASE2/healthz" > /dev/null 2>&1 && break
  sleep 0.05
done

echo "== streaming 100k more events at the primary while the replica applies and serves reads"
"$WORK/bin/grca-load" -addr "$BASE" -events 100000 -batch 1000 -c 4 \
  -wire binary -read-from "$BASE2" -probes 100 -o "$WORK/load-replica.json"

# Catch-up: the stream is quiesced; poll until the replica's event count
# matches the primary's, then require the breakdown bytes to match too.
# (Breakdown equality alone is too weak a signal — bgpflap's rows can be
# identical while the replica still trails on undiagnosed raw events.)
CATCH_T0=$(date +%s.%N)
EVENTS_PRIMARY=$(curl -fsS "$BASE/v1/events" | python3 -c 'import json,sys; print(json.load(sys.stdin)["events"])')
curl -fsS "$BASE/v1/breakdown?app=bgpflap" > "$WORK/breakdown-primary.json"
EVENTS_REPLICA=-1
for _ in $(seq 1 1200); do
  EVENTS_REPLICA=$(curl -fsS "$BASE2/v1/events" 2>/dev/null | python3 -c 'import json,sys; print(json.load(sys.stdin)["events"])' 2>/dev/null || echo -1)
  [ "$EVENTS_REPLICA" = "$EVENTS_PRIMARY" ] && break
  sleep 0.05
done
CATCH_T1=$(date +%s.%N)
if [ "$EVENTS_REPLICA" != "$EVENTS_PRIMARY" ]; then
  echo "serve_smoke: FAIL — replica stores $EVENTS_REPLICA events, primary $EVENTS_PRIMARY" >&2
  curl -fsS "$BASE2/v1/replication/status" >&2 || true
  echo >&2
  curl -fsS "$BASE/v1/replication/status" >&2 || true
  echo >&2
  exit 1
fi
CATCHUP_SECONDS=$(python3 -c "print(round($CATCH_T1 - $CATCH_T0, 3))")
curl -fsS "$BASE2/v1/breakdown?app=bgpflap" > "$WORK/breakdown-replica.json"
if ! cmp -s "$WORK/breakdown-primary.json" "$WORK/breakdown-replica.json"; then
  echo "serve_smoke: FAIL — caught-up replica's breakdown differs from the primary" >&2
  diff "$WORK/breakdown-primary.json" "$WORK/breakdown-replica.json" >&2 || true
  exit 1
fi
# Lag gauges (post-catch-up they sit at/near zero; presence is the check)
# and replication status from both sides.
curl -fsS "$BASE2/v1/stats" | python3 -c '
import json, sys
m = json.load(sys.stdin)["metrics"]["gauges"]
lag = {k: v for k, v in m.items() if k.startswith("replica.follower.")}
assert lag, "no replica.follower.* gauges in replica stats"
print("   replica gauges:", json.dumps(lag))
' || { echo "serve_smoke: FAIL — replica lag gauges missing from /v1/stats" >&2; exit 1; }
curl -fsS "$BASE2/v1/replication/status" | python3 -c '
import json, sys
r = json.load(sys.stdin)
assert r["role"] == "replica" and r.get("shard_lag"), r
' || { echo "serve_smoke: FAIL — bad replica /v1/replication/status" >&2; exit 1; }
echo "   replica caught up in ${CATCHUP_SECONDS}s ($EVENTS_REPLICA events, breakdown byte-identical)"

echo "== SIGKILL primary, promote the replica"
curl -fsS "$BASE/v1/breakdown?app=bgpflap" > "$WORK/breakdown-prekill.json"
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
PROMOTE_T0=$(date +%s.%N)
"$WORK/bin/grca" promote -addr "$BASE2"
PROMOTE_T1=$(date +%s.%N)
PROMOTE_SECONDS=$(python3 -c "print(round($PROMOTE_T1 - $PROMOTE_T0, 3))")
curl -fsS "$BASE2/v1/breakdown?app=bgpflap" > "$WORK/breakdown-promoted.json"
if ! cmp -s "$WORK/breakdown-prekill.json" "$WORK/breakdown-promoted.json"; then
  echo "serve_smoke: FAIL — promoted replica's breakdown differs from the pre-kill primary" >&2
  diff "$WORK/breakdown-prekill.json" "$WORK/breakdown-promoted.json" >&2 || true
  exit 1
fi
# The promoted node is a writable primary.
curl -fsS -X POST "$BASE2/v1/ingest" --data-binary @"$WORK/sse-batch.json" > /dev/null \
  || { echo "serve_smoke: FAIL — promoted node rejected a write" >&2; exit 1; }
curl -fsS "$BASE2/v1/replication/status" | python3 -c '
import json, sys
r = json.load(sys.stdin)
assert r["role"] == "primary", r
' || { echo "serve_smoke: FAIL — promoted node still reports replica role" >&2; exit 1; }
echo "   promoted in ${PROMOTE_SECONDS}s; breakdown byte-identical to pre-kill primary; writes accepted"
kill -TERM "$REPLICA_PID" && wait "$REPLICA_PID" 2>/dev/null || true
REPLICA_PID=""
python3 - "$WORK/replication.json" "$CATCHUP_SECONDS" "$PROMOTE_SECONDS" "$WORK/load-replica.json" <<'PYEOF'
import json, sys
out, catchup, promote, load_path = sys.argv[1:5]
load = json.load(open(load_path))
rep = {
    "replica_catchup_seconds": float(catchup),
    "promote_seconds": float(promote),
    "replica_reads": load.get("replica_reads"),
    "replica_read_p50_ms": load.get("replica_read_p50_ms"),
    "replica_read_p99_ms": load.get("replica_read_p99_ms"),
    "replica_probe_p50_ms": load.get("replica_probe_p50_ms"),
    "replica_probe_p99_ms": load.get("replica_probe_p99_ms"),
    "events_per_sec_with_replica": load.get("events_per_sec"),
}
json.dump(rep, open(out, "w"), indent=2)
PYEOF

# Shard-scaling comparison: replay the same binary stream against a fresh
# single-shard data dir (shard count is pinned per data dir, so a second
# dir is required). The warmup load mirrors the main run's small-store
# phase so both binary measurements start from a comparable store.
echo "== single-shard comparison run (-shards=1, fresh data dir)"
start_serve "$WORK/data-shard1" 1
wait_phase loading
"$WORK/bin/grca-load" -addr "$BASE" -bundle "$WORK/corpus" -events 10000 -batch 1000 -c 4 \
  -o "$WORK/load-shard1-warm.json"
wait_phase serving
"$WORK/bin/grca-load" -addr "$BASE" -events 90000 -batch 1000 -c 4 \
  -wire binary -o "$WORK/load-shard1.json"
stop_serve

# Merge the load runs into one report (the sharded binary run is the
# headline; its probe run saw the largest store), gate the breakdown
# growth ratio, the absolute events/s floor, the sharded/single-shard
# speedup (>= 4 cores only), and the per-encoding regression vs the
# committed baseline (skipped when no baseline was present).
python3 - "$OUT" "$WORK/load-small.json" "$WORK/load-json.json" "$WORK/load-binary.json" \
  "$WORK/load-shard1.json" "${BASELINE:-}" "$MAX_P99_RATIO" "$MIN_EPS" "$MAX_REGRESSION" \
  "$RESTART_SECONDS" "$EVENTS_AFTER" "$SHARDS" "$CORES" "$GOMAXPROCS_EFF" "$MIN_SHARD_RATIO" <<'PYEOF'
import json, sys
(out, small_path, json_path, bin_path, shard1_path, baseline_path,
 max_ratio, min_eps, max_reg, restart_s, restart_events,
 shards, cores, gomaxprocs, min_shard_ratio) = sys.argv[1:16]
max_ratio, min_eps, max_reg = float(max_ratio), int(min_eps), float(max_reg)
shards, cores, gomaxprocs = int(shards), int(cores), int(gomaxprocs)
min_shard_ratio = float(min_shard_ratio)
small = json.load(open(small_path))
jrep = json.load(open(json_path))
brep = json.load(open(bin_path))
s1rep = json.load(open(shard1_path))

rep = dict(brep)  # headline = sharded binary wire run (carried the large-store probe)
rep["shards"] = shards
rep["cores"] = cores
rep["gomaxprocs"] = gomaxprocs
rep["events_per_sec_binary"] = brep["events_per_sec"]
rep["events_per_sec_json"] = jrep["events_per_sec"]
rep["events_per_sec"] = brep["events_per_sec"]
rep["restart_seconds"] = float(restart_s)
rep["restart_events"] = int(restart_events)
rep["breakdown_p99_ms_small_store"] = small["probe_p99_ms"]
rep["breakdown_p99_ms_large_store"] = rep.pop("probe_p99_ms")
rep["breakdown_p50_ms_large_store"] = rep.pop("probe_p50_ms")
ratio = rep["breakdown_p99_ms_large_store"] / max(rep["breakdown_p99_ms_small_store"], 1e-9)
rep["breakdown_p99_growth_ratio"] = round(ratio, 3)
# Both shard rows, verbatim, so the speedup can be re-derived.
speedup = brep["events_per_sec"] / max(s1rep["events_per_sec"], 1e-9)
rep["shard_speedup_binary"] = round(speedup, 2)
rep["runs"] = [
    {"shards": 1, "wire": "binary", "events_per_sec": s1rep["events_per_sec"],
     "ingest_p50_ms": s1rep.get("ingest_p50_ms"), "ingest_p99_ms": s1rep.get("ingest_p99_ms")},
    {"shards": shards, "wire": "binary", "events_per_sec": brep["events_per_sec"],
     "ingest_p50_ms": brep.get("ingest_p50_ms"), "ingest_p99_ms": brep.get("ingest_p99_ms")},
]
json.dump(rep, open(out, "w"), indent=2)
open(out, "a").write("\n")

print(f"   ingest: {rep['events_per_sec_json']:.0f} events/s JSON, "
      f"{rep['events_per_sec_binary']:.0f} events/s binary "
      f"({rep['events_per_sec_binary']/max(rep['events_per_sec_json'],1e-9):.2f}x)")
print(f"   scaling: {s1rep['events_per_sec']:.0f} events/s at shards=1 -> "
      f"{brep['events_per_sec']:.0f} events/s at shards={shards} "
      f"({speedup:.2f}x on {cores} cores)")
print(f"   restart: {rep['restart_events']} events recovered in {rep['restart_seconds']:.2f}s")
print(f"   breakdown p99: {rep['breakdown_p99_ms_small_store']:.2f}ms small -> "
      f"{rep['breakdown_p99_ms_large_store']:.2f}ms large (ratio {ratio:.2f})")

failed = False
if ratio > max_ratio:
    print(f"serve_smoke: FAIL — breakdown p99 grew {ratio:.2f}x (> {max_ratio}x) with a ~10x larger store",
          file=sys.stderr)
    failed = True
if cores >= 4 and shards >= 4:
    if speedup < min_shard_ratio:
        print(f"serve_smoke: FAIL — shards={shards} binary ingest only {speedup:.2f}x the "
              f"single-shard rate (< {min_shard_ratio}x on {cores} cores)", file=sys.stderr)
        failed = True
else:
    print(f"   (shard speedup gate skipped: {cores} cores / {shards} shards; need >= 4 of each)")
for mode in ("json", "binary"):
    if rep[f"events_per_sec_{mode}"] < min_eps:
        print(f"serve_smoke: FAIL — {mode} ingest {rep[f'events_per_sec_{mode}']:.0f} events/s "
              f"below floor {min_eps}", file=sys.stderr)
        failed = True
if baseline_path:
    base = json.load(open(baseline_path))
    for mode in ("json", "binary"):
        want = base.get(f"events_per_sec_{mode}")
        if want is None and mode == "binary":
            # Pre-dual-encoding baseline: its single number was JSON-path.
            continue
        if want is None:
            want = base.get("events_per_sec")
        if want is None:
            continue
        floor = want * (1.0 - max_reg)
        got = rep[f"events_per_sec_{mode}"]
        if got < floor:
            print(f"serve_smoke: FAIL — {mode} ingest regressed to {got:.0f} events/s "
                  f"(< {floor:.0f} = baseline {want:.0f} - {max_reg:.0%})", file=sys.stderr)
            failed = True
else:
    print("   (no committed baseline found; regression gate skipped)")
sys.exit(1 if failed else 0)
PYEOF

# Fold the replication-phase metrics into the committed report.
python3 - "$OUT" "$WORK/replication.json" <<'PYEOF'
import json, sys
out, rep_path = sys.argv[1:3]
rep = json.load(open(out))
repl = json.load(open(rep_path))
rep["replication"] = repl
json.dump(rep, open(out, "w"), indent=2)
open(out, "a").write("\n")
print(f"   replication: caught up in {repl['replica_catchup_seconds']:.2f}s, "
      f"promoted in {repl['promote_seconds']:.2f}s, "
      f"{repl['replica_reads']} replica reads "
      f"(p99 {repl['replica_read_p99_ms']:.2f}ms)")
PYEOF

echo "== serve_smoke OK ($OUT written)"
