#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke test of `grca serve`:
#   1. generate a simulated corpus
#   2. start the service, load the corpus over HTTP, finalize
#   3. stream normalized events with grca-load, recording throughput
#   4. diagnose, SIGTERM, restart, and assert the event count and the
#      diagnosis bytes survived the restart
#
# Usage: scripts/serve_smoke.sh [out.json]
#   out.json  where to write the throughput report (default BENCH_SERVE.json)
set -euo pipefail

OUT="${1:-BENCH_SERVE.json}"
ADDR="127.0.0.1:18080"
BASE="http://$ADDR"
WORK="$(mktemp -d)"
SERVE_PID=""
MIN_EPS="${SERVE_SMOKE_MIN_EPS:-20000}"

cleanup() {
  if [ -n "$SERVE_PID" ] && kill -0 "$SERVE_PID" 2>/dev/null; then
    kill -TERM "$SERVE_PID" 2>/dev/null || true
    wait "$SERVE_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

wait_phase() { # wait_phase <phase> — poll /healthz until the phase matches
  want="$1"
  for _ in $(seq 1 100); do
    got=$(curl -fsS "$BASE/healthz" 2>/dev/null | python3 -c 'import json,sys; print(json.load(sys.stdin)["phase"])' 2>/dev/null || true)
    [ "$got" = "$want" ] && return 0
    sleep 0.2
  done
  echo "serve_smoke: timed out waiting for phase $want" >&2
  exit 1
}

# Run the built binary directly: `go run` would receive the SIGTERM
# itself and die without forwarding it to the server.
start_serve() {
  "$WORK/bin/grca" serve -addr "$ADDR" -data-dir "$WORK/data" -bundle "$WORK/corpus" -fsync batch &
  SERVE_PID=$!
}

stop_serve() { # graceful SIGTERM drain
  kill -TERM "$SERVE_PID"
  wait "$SERVE_PID"
  SERVE_PID=""
}

echo "== building binaries + generating corpus"
go build ./...
go build -o "$WORK/bin/" ./cmd/grca ./cmd/grca-load ./cmd/grca-sim
"$WORK/bin/grca-sim" -out "$WORK/corpus" -seed 7 -pops 3 -pers 2 -sessions 6 -days 2 -bgp 80 -cdn 40 -pim 0

echo "== starting serve"
start_serve
wait_phase loading

echo "== loading feeds + streaming events over HTTP"
"$WORK/bin/grca-load" -addr "$BASE" -bundle "$WORK/corpus" -events 100000 -batch 1000 -c 4 -o "$OUT"
wait_phase serving

EVENTS_BEFORE=$(curl -fsS "$BASE/v1/events" | python3 -c 'import json,sys; print(json.load(sys.stdin)["events"])')
curl -fsS -X POST "$BASE/v1/diagnose" -d '{"app":"bgpflap","all":true}' > "$WORK/diag-before.json"
echo "   $EVENTS_BEFORE events stored; $(python3 -c 'import json;print(len(json.load(open("'"$WORK"'/diag-before.json"))["diagnoses"]))') bgpflap diagnoses"

echo "== SIGTERM + restart"
stop_serve
start_serve
wait_phase serving

EVENTS_AFTER=$(curl -fsS "$BASE/v1/events" | python3 -c 'import json,sys; print(json.load(sys.stdin)["events"])')
curl -fsS -X POST "$BASE/v1/diagnose" -d '{"app":"bgpflap","all":true}' > "$WORK/diag-after.json"

if [ "$EVENTS_BEFORE" != "$EVENTS_AFTER" ]; then
  echo "serve_smoke: FAIL — event count $EVENTS_BEFORE before restart, $EVENTS_AFTER after" >&2
  exit 1
fi
if ! cmp -s "$WORK/diag-before.json" "$WORK/diag-after.json"; then
  echo "serve_smoke: FAIL — diagnosis output changed across restart" >&2
  exit 1
fi

EPS=$(python3 -c 'import json; print(int(json.load(open("'"$OUT"'"))["events_per_sec"]))')
echo "== restart preserved $EVENTS_AFTER events and identical diagnoses; ingest ran at $EPS events/s"
if [ "$EPS" -lt "$MIN_EPS" ]; then
  echo "serve_smoke: FAIL — $EPS events/s below floor $MIN_EPS" >&2
  exit 1
fi

stop_serve
echo "== serve_smoke OK ($OUT written)"
