// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index). Each breakdown
// benchmark prints its regenerated table once, so
//
//	go test -bench=. -benchmem | tee bench_output.txt
//
// captures the full paper-versus-measured record. Custom metrics:
// accuracy% (ground-truth diagnosis accuracy), us/event (per-symptom
// diagnosis latency), score (NICE significance score).
package grca_test

import (
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"grca/internal/apps/backbone"
	"grca/internal/apps/bgpflap"
	"grca/internal/apps/cdn"
	"grca/internal/apps/pim"
	"grca/internal/browser"
	"grca/internal/chaos"
	"grca/internal/dgraph"
	"grca/internal/engine"
	"grca/internal/event"
	"grca/internal/netstate"
	"grca/internal/obs"
	"grca/internal/platform"
	"grca/internal/simnet"
	"grca/internal/store"
	"grca/internal/temporal"
)

// ---------------------------------------------------------------------
// Shared corpora (generated once per bench run)
// ---------------------------------------------------------------------

type corpus struct {
	dataset *simnet.Dataset
	sys     *platform.System
}

func mustCorpus(b *testing.B, once *sync.Once, slot **corpus, cfg simnet.Config, opts platform.Options) *corpus {
	b.Helper()
	once.Do(func() {
		d, err := simnet.Generate(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "corpus: %v\n", err)
			os.Exit(1)
		}
		sys, err := platform.FromDataset(d, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "corpus: %v\n", err)
			os.Exit(1)
		}
		*slot = &corpus{dataset: d, sys: sys}
	})
	return *slot
}

var (
	bgpOnce, cdnOnce, pimOnce, mineOnce, lcOnce sync.Once
	bgpC, cdnC, pimC, mineC, lcC                *corpus
)

func bgpCorpus(b *testing.B) *corpus {
	return mustCorpus(b, &bgpOnce, &bgpC, simnet.Config{
		Seed: 2010, PoPs: 4, PERsPerPoP: 2, SessionsPerPER: 12,
		Duration: 14 * 24 * time.Hour, BGPFlapIncidents: 800,
	}, platform.Options{})
}

func cdnCorpus(b *testing.B) *corpus {
	return mustCorpus(b, &cdnOnce, &cdnC, simnet.Config{
		Seed: 7, PoPs: 4, PERsPerPoP: 2, SessionsPerPER: 6,
		Duration: 14 * 24 * time.Hour, CDNIncidents: 400,
	}, platform.Options{})
}

func pimCorpus(b *testing.B) *corpus {
	return mustCorpus(b, &pimOnce, &pimC, simnet.Config{
		Seed: 3, PoPs: 4, PERsPerPoP: 2, SessionsPerPER: 10,
		MVPNFraction: 0.35, Duration: 14 * 24 * time.Hour, PIMIncidents: 500,
	}, platform.Options{})
}

func mineCorpus(b *testing.B) *corpus {
	return mustCorpus(b, &mineOnce, &mineC, simnet.Config{
		Seed: 99, PoPs: 4, PERsPerPoP: 2, SessionsPerPER: 12,
		Duration: 21 * 24 * time.Hour, BGPFlapIncidents: 700,
		ProvisioningBugIncidents: 50,
	}, platform.Options{GenericSignatures: true})
}

func lcCorpus(b *testing.B) *corpus {
	return mustCorpus(b, &lcOnce, &lcC, simnet.Config{
		Seed: 4, PoPs: 3, PERsPerPoP: 2, SessionsPerPER: 16,
		Duration: 7 * 24 * time.Hour, BGPFlapIncidents: 250, LineCardCrash: true,
	}, platform.Options{})
}

// chaosCorpus is the BGP corpus re-ingested from feeds where 10% of the
// records were skewed, reordered, duplicated, or truncated (seeded via
// internal/chaos) — the dirty-feed counterpart of bgpCorpus for measuring
// pipeline throughput under realistic corruption.
var (
	chaosOnce sync.Once
	chaosC    *corpus
)

func chaosCorpus(b *testing.B) *corpus {
	clean := bgpCorpus(b)
	chaosOnce.Do(func() {
		inj := chaos.New(chaos.Config{
			Seed: 2010,
			Faults: []chaos.Fault{
				chaos.FaultSkew, chaos.FaultReorder,
				chaos.FaultDuplicate, chaos.FaultTruncate,
			},
			ReorderFraction: 0.10, DuplicateFraction: 0.10, TruncateFraction: 0.10,
		})
		fb := inj.Bundle(platform.BundleFromDataset(clean.dataset))
		sys, err := fb.Assemble(platform.Options{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaos corpus: %v\n", err)
			os.Exit(1)
		}
		chaosC = &corpus{dataset: clean.dataset, sys: sys}
	})
	return chaosC
}

var printOnce sync.Map

func printTableOnce(key, title string, ds []engine.Diagnosis, display func(string) string) {
	if _, dup := printOnce.LoadOrStore(key, true); dup {
		return
	}
	fmt.Printf("\n")
	_ = browser.WriteTable(os.Stdout, title, browser.Breakdown(ds, display))
}

// runBreakdown is the shared body of the three table benchmarks: the
// measured operation is a full DiagnoseAll over the corpus.
func runBreakdown(b *testing.B, c *corpus,
	newEngine func(store.Store, *netstate.View) (*engine.Engine, error),
	study, title string, display func(string) string, tolerance time.Duration) {
	eng, err := newEngine(c.sys.Store, c.sys.View)
	if err != nil {
		b.Fatal(err)
	}
	var ds []engine.Diagnosis
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds = eng.DiagnoseAll()
	}
	b.StopTimer()
	if len(ds) == 0 {
		b.Fatal("no symptoms diagnosed")
	}
	score := platform.ScoreDiagnoses(c.dataset.Truth, study, ds, tolerance)
	b.ReportMetric(100*score.Accuracy(), "accuracy%")
	b.ReportMetric(float64(len(ds)), "events")
	b.ReportMetric(float64(b.Elapsed().Microseconds())/float64(b.N)/float64(len(ds)), "us/event")
	printTableOnce(study, title, ds, display)
}

// ---------------------------------------------------------------------
// Table benchmarks
// ---------------------------------------------------------------------

// BenchmarkTableIV_BGPFlapBreakdown regenerates Table IV: the root-cause
// breakdown of customer eBGP flaps (paper: interface flap 63.94%, line
// protocol flap 11.15%, unknown 10.95%, CPU spike 6.44%, HTE 4.86%, ...).
func BenchmarkTableIV_BGPFlapBreakdown(b *testing.B) {
	runBreakdown(b, bgpCorpus(b), bgpflap.NewEngine, "bgp",
		"Table IV — Root Cause Breakdown of BGP Flaps", bgpflap.DisplayLabel, 2*time.Minute)
}

// BenchmarkTableVI_CDNBreakdown regenerates Table VI: the breakdown of
// CDN end-to-end RTT degradations (paper: outside the network 74.83%,
// egress change 5.71%, interface flap 4.65%, reconvergence 4.16%, policy
// change 3.83%, congestion 3.50%, loss 3.32%).
func BenchmarkTableVI_CDNBreakdown(b *testing.B) {
	runBreakdown(b, cdnCorpus(b), cdn.NewEngine, "cdn",
		"Table VI — Root Cause Breakdown of End-to-End RTT Degradations", cdn.DisplayLabel, 10*time.Minute)
}

// BenchmarkTableVIII_PIMBreakdown regenerates Table VIII: the breakdown of
// PIM adjacency losses (paper: customer-facing interface flap 69.21%,
// reconvergence 10.36%, router cost in/out 10.34%, config change 4.04%,
// uplink loss 1.95%, unknown 1.76%, cost out 1.50%, cost in 0.84%).
func BenchmarkTableVIII_PIMBreakdown(b *testing.B) {
	runBreakdown(b, pimCorpus(b), pim.NewEngine, "pim",
		"Table VIII — Root Cause Breakdown of PIM Adjacency Losses", pim.DisplayLabel, 2*time.Minute)
}

// BenchmarkSectionI_BackboneLoss regenerates the §I motivating scenario:
// a month of sporadic in-network packet losses between PoPs, diagnosed in
// the aggregate to decide between capacity augmentation (congestion) and
// MPLS fast reroute (re-convergence). The paper publishes no table for
// this study; the metric of record is ground-truth accuracy.
func BenchmarkSectionI_BackboneLoss(b *testing.B) {
	c := mustCorpus(b, &bboneOnce, &bboneC, simnet.Config{
		Seed: 21, PoPs: 4, PERsPerPoP: 2, SessionsPerPER: 4,
		Duration: 28 * 24 * time.Hour, BackboneIncidents: 300,
	}, platform.Options{})
	runBreakdown(b, c, backbone.NewEngine, "backbone",
		"§I scenario — Root Cause Breakdown of In-Network Packet Loss",
		backbone.DisplayLabel, 10*time.Minute)
}

var (
	bboneOnce sync.Once
	bboneC    *corpus
)

// BenchmarkTableI_KnowledgeEvents measures building the common event
// catalogue (Table I).
func BenchmarkTableI_KnowledgeEvents(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if event.Knowledge().Len() != 24 {
			b.Fatal("catalogue size")
		}
	}
}

// BenchmarkTableII_KnowledgeRules measures building the common
// diagnosis-rule catalogue (Table II).
func BenchmarkTableII_KnowledgeRules(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if dgraph.Knowledge().Len() != 55 {
			b.Fatal("catalogue size")
		}
	}
}

// ---------------------------------------------------------------------
// Figure benchmarks
// ---------------------------------------------------------------------

// BenchmarkFig3_TemporalJoin measures the six-parameter temporal join on
// the paper's worked example (eBGP flap [1000,2000] with Start/Start
// 180/5 vs interface flap [900,901] with Start/End 5/5).
func BenchmarkFig3_TemporalJoin(b *testing.B) {
	r := temporal.Rule{
		Symptom:    temporal.Expansion{Option: temporal.StartStart, Left: 180 * time.Second, Right: 5 * time.Second},
		Diagnostic: temporal.Expansion{Option: temporal.StartEnd, Left: 5 * time.Second, Right: 5 * time.Second},
	}
	t0 := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	ss, se := t0.Add(1000*time.Second), t0.Add(2000*time.Second)
	ds, de := t0.Add(900*time.Second), t0.Add(901*time.Second)
	for i := 0; i < b.N; i++ {
		if !r.Joined(ss, se, ds, de) {
			b.Fatal("paper example must join")
		}
	}
}

// BenchmarkFig4_BGPGraphBuild measures instantiating the BGP-flap
// application (Table III events + Fig. 4 graph) from its rule-language
// specification.
func BenchmarkFig4_BGPGraphBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := bgpflap.Build(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5_CDNGraphBuild measures instantiating the CDN application
// (Table V events + Fig. 5 graph).
func BenchmarkFig5_CDNGraphBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := cdn.Build(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6_PIMGraphBuild measures instantiating the PIM application
// (Table VII events + Fig. 6 graph).
func BenchmarkFig6_PIMGraphBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := pim.Build(); err != nil {
			b.Fatal(err)
		}
	}
}

// cpuRelatedFlap is the §IV-B prefilter.
func cpuRelatedFlap(d engine.Diagnosis) bool {
	hte, cpu, link := false, false, false
	d.Root.Walk(func(n *engine.Node) {
		switch n.Event {
		case event.EBGPHoldTimerExpired:
			hte = true
		case event.CPUHighSpike, event.CPUHighAverage:
			cpu = true
		case event.InterfaceFlap, event.LineProtoFlap:
			link = true
		}
	})
	return hte && cpu && !link
}

// BenchmarkFig7_RuleMining regenerates the §IV-B study (Fig. 7): mining
// candidate signature series against engine-prefiltered CPU-related flaps.
// Reported metrics contrast the provisioning-activity significance score
// with and without prefiltering — the paper's central observation is that
// the unfiltered correlation disappears into the noise.
func BenchmarkFig7_RuleMining(b *testing.B) {
	c := mineCorpus(b)
	eng, err := bgpflap.NewEngine(c.sys.Store, c.sys.View)
	if err != nil {
		b.Fatal(err)
	}
	ds := eng.DiagnoseAll()
	cpuDs := browser.Filter(ds, cpuRelatedFlap)
	miner := browser.Miner{Store: c.sys.Store, Bin: time.Minute, Smooth: 5}
	candidates := miner.CandidateSeries("syslog:", "workflow:")
	from := c.dataset.Config.Start
	to := from.Add(c.dataset.Config.Duration)

	score := func(ds []engine.Diagnosis) (float64, int) {
		var symptoms []*event.Instance
		for _, d := range ds {
			symptoms = append(symptoms, d.Symptom)
		}
		results, err := miner.Mine(symptoms, candidates, from, to)
		if err != nil {
			b.Fatal(err)
		}
		prov := 0.0
		for _, r := range results {
			if r.Series == "workflow:provision-customer" {
				prov = r.Result.Score
			}
		}
		return prov, len(browser.Significant(results))
	}

	var pre, all float64
	var sig int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pre, sig = score(cpuDs)
	}
	b.StopTimer()
	all, _ = score(ds)
	b.ReportMetric(pre, "score-prefiltered")
	b.ReportMetric(all, "score-unfiltered")
	b.ReportMetric(float64(sig), "significant-series")
	b.ReportMetric(float64(len(candidates)), "candidates")
}

// BenchmarkFig8_BayesLineCard regenerates the §IV-C study: joint Bayesian
// classification of same-card flap groups surfaces the unobservable
// line-card crash that rule-based reasoning labels "Interface flap".
func BenchmarkFig8_BayesLineCard(b *testing.B) {
	c := lcCorpus(b)
	eng, err := bgpflap.NewEngine(c.sys.Store, c.sys.View)
	if err != nil {
		b.Fatal(err)
	}
	ds := eng.DiagnoseAll()
	cfg, err := bgpflap.BayesConfig()
	if err != nil {
		b.Fatal(err)
	}
	flagged, crashFlaps := 0, 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		flagged, crashFlaps = 0, 0
		groups := bgpflap.GroupByCard(c.sys.Topo, ds, 3*time.Minute)
		for _, g := range groups {
			res, err := bgpflap.ClassifyGroup(cfg, g, 4)
			if err != nil {
				b.Fatal(err)
			}
			if res.Best == bgpflap.ClassLineCard {
				flagged++
				crashFlaps = len(g.Diagnoses)
			}
		}
	}
	b.StopTimer()
	if flagged != 1 {
		b.Fatalf("line-card groups flagged = %d, want exactly the injected crash", flagged)
	}
	b.ReportMetric(float64(flagged), "linecard-groups")
	b.ReportMetric(float64(crashFlaps), "flaps-in-group")
}

// ---------------------------------------------------------------------
// Latency benchmarks (§III-A.2, §III-B.2, §III-C.2)
// ---------------------------------------------------------------------

// benchLatency measures single-event diagnosis latency over a corpus'
// symptoms, round-robin.
func benchLatency(b *testing.B, c *corpus, newEngine func(store.Store, *netstate.View) (*engine.Engine, error)) {
	benchLatencyTracing(b, c, newEngine, false)
}

func benchLatencyTracing(b *testing.B, c *corpus, newEngine func(store.Store, *netstate.View) (*engine.Engine, error), tracing bool) {
	eng, err := newEngine(c.sys.Store, c.sys.View)
	if err != nil {
		b.Fatal(err)
	}
	eng.Tracing = tracing
	symptoms := c.sys.Store.All(eng.Graph.Root)
	if len(symptoms) == 0 {
		b.Fatal("no symptoms")
	}
	hits := obs.GetCounter("engine.expand.cache.hits")
	misses := obs.GetCounter("engine.expand.cache.misses")
	h0, m0 := hits.Value(), misses.Value()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Diagnose(symptoms[i%len(symptoms)])
	}
	b.StopTimer()
	// The shared spatial cache is the load-bearing optimization here: report
	// its effectiveness and fail the benchmark outright if repeated
	// diagnoses stop sharing expansions (dh+dm == 0 means the registry is
	// gated off, as in the ObsOff variant).
	dh, dm := hits.Value()-h0, misses.Value()-m0
	if dh+dm > 0 {
		b.ReportMetric(float64(dh)/float64(dh+dm), "expand-hit-ratio")
	}
	if b.N >= 2 && dh == 0 && dm > 0 {
		b.Fatalf("expand cache recorded no hits across %d diagnoses (%d misses)", b.N, dm)
	}
}

// BenchmarkDiagnosisLatencyBGP measures per-event BGP flap diagnosis
// (paper: < 5 s/event against operational databases).
func BenchmarkDiagnosisLatencyBGP(b *testing.B) { benchLatency(b, bgpCorpus(b), bgpflap.NewEngine) }

// BenchmarkDiagnosisLatencyBGPObsOff is BenchmarkDiagnosisLatencyBGP with
// the metrics registry gated off (obs.SetEnabled(false)); the pair bounds
// the always-on instrumentation overhead, budgeted at ≤5%
// (BENCH_BASELINE.json records the measured delta).
func BenchmarkDiagnosisLatencyBGPObsOff(b *testing.B) {
	obs.SetEnabled(false)
	defer obs.SetEnabled(true)
	benchLatency(b, bgpCorpus(b), bgpflap.NewEngine)
}

// BenchmarkDiagnosisLatencyBGPTraced measures the same path with
// per-diagnosis span recording on — the cost of leaving `run -trace`
// enabled in a deployment.
func BenchmarkDiagnosisLatencyBGPTraced(b *testing.B) {
	benchLatencyTracing(b, bgpCorpus(b), bgpflap.NewEngine, true)
}

// BenchmarkDiagnosisLatencyCDN measures per-event CDN diagnosis (paper:
// < 3 min/event, dominated by interdomain and intradomain route
// computation — the shape to verify is CDN ≫ BGP/PIM).
func BenchmarkDiagnosisLatencyCDN(b *testing.B) { benchLatency(b, cdnCorpus(b), cdn.NewEngine) }

// BenchmarkDiagnosisLatencyPIM measures per-event PIM diagnosis (paper:
// < 5 s/event; a day's worth of events in 1–2 h).
func BenchmarkDiagnosisLatencyPIM(b *testing.B) { benchLatency(b, pimCorpus(b), pim.NewEngine) }

// BenchmarkScalePaper600PERs runs the BGP-flap study at the paper's
// deployment scale — "more than 600 provider edge routers in different
// locations, each of which has several hundred eBGP sessions" (§III-A.2)
// scaled to 600 PERs × 20 sessions — and measures bulk diagnosis over a
// month of flaps. Corpus generation (~12,700 devices, tens of thousands
// of raw records) happens once during setup.
func BenchmarkScalePaper600PERs(b *testing.B) {
	if testing.Short() {
		b.Skip("paper-scale corpus generation takes ~1 minute")
	}
	c := mustCorpus(b, &scaleOnce, &scaleC, simnet.Config{
		Seed: 1, PoPs: 50, PERsPerPoP: 12, SessionsPerPER: 20,
		Duration: 28 * 24 * time.Hour, BGPFlapIncidents: 3000,
	}, platform.Options{})
	eng, err := bgpflap.NewEngine(c.sys.Store, c.sys.View)
	if err != nil {
		b.Fatal(err)
	}
	var ds []engine.Diagnosis
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds = eng.DiagnoseAll()
	}
	b.StopTimer()
	score := platform.ScoreDiagnoses(c.dataset.Truth, "bgp", ds, 2*time.Minute)
	b.ReportMetric(100*score.Accuracy(), "accuracy%")
	b.ReportMetric(float64(len(ds)), "events")
	b.ReportMetric(float64(b.Elapsed().Microseconds())/float64(b.N)/float64(len(ds)), "us/event")
}

var (
	scaleOnce sync.Once
	scaleC    *corpus
)

// BenchmarkParallelDiagnosis measures DiagnoseAllParallel speedup over the
// BGP corpus (symptoms are independent; the store and network view are
// read-only during diagnosis).
func BenchmarkParallelDiagnosis(b *testing.B) {
	c := bgpCorpus(b)
	eng, err := bgpflap.NewEngine(c.sys.Store, c.sys.View)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 4, 0} {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 0 {
			name = "workers=GOMAXPROCS"
		}
		b.Run(name, func(b *testing.B) {
			var ds []engine.Diagnosis
			for i := 0; i < b.N; i++ {
				ds = eng.DiagnoseAllParallel(workers)
			}
			b.ReportMetric(float64(len(ds)), "events")
		})
	}
}

// BenchmarkChaosParallelDiagnosis measures DiagnoseAllParallel throughput
// on the clean BGP corpus versus the same corpus ingested from 10%-faulted
// feeds (skew + reorder + duplicate + truncate; see BENCH_CHAOS.json for
// the recorded comparison). Accuracy is reported alongside so a throughput
// win can't hide an evidence loss.
func BenchmarkChaosParallelDiagnosis(b *testing.B) {
	for _, v := range []struct {
		name string
		c    *corpus
	}{
		{"clean", bgpCorpus(b)},
		{"faulted10pct", chaosCorpus(b)},
	} {
		eng, err := bgpflap.NewEngine(v.c.sys.Store, v.c.sys.View)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(v.name, func(b *testing.B) {
			var ds []engine.Diagnosis
			for i := 0; i < b.N; i++ {
				ds = eng.DiagnoseAllParallel(0)
			}
			b.StopTimer()
			score := platform.ScoreDiagnoses(v.c.dataset.Truth, "bgp", ds, 10*time.Minute)
			b.ReportMetric(100*score.Accuracy(), "accuracy%")
			b.ReportMetric(float64(len(ds)), "events")
		})
	}
}

// BenchmarkPIMDayBatch measures diagnosing one day's worth of PIM events
// in bulk (§III-C.2).
func BenchmarkPIMDayBatch(b *testing.B) {
	c := pimCorpus(b)
	eng, err := pim.NewEngine(c.sys.Store, c.sys.View)
	if err != nil {
		b.Fatal(err)
	}
	all := c.sys.Store.All(eng.Graph.Root)
	dayStart := c.dataset.Config.Start.Add(24 * time.Hour)
	dayEnd := dayStart.Add(24 * time.Hour)
	var day []*event.Instance
	for _, in := range all {
		if !in.Start.Before(dayStart) && in.Start.Before(dayEnd) {
			day = append(day, in)
		}
	}
	if len(day) == 0 {
		b.Skip("no events on day 2")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, in := range day {
			eng.Diagnose(in)
		}
	}
	b.ReportMetric(float64(len(day)), "events/day")
}
